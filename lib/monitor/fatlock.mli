(** Fat locks: the heavyweight monitor subsystem.

    The paper assumes "a pre-existing heavy-weight system ... including
    queuing of unsatisfied lock requests, and the wait, notify, and
    notifyAll operations" (§2.1) and represents it as a multi-word
    structure with an owner, a lock count (not count-minus-one, Fig. 2)
    and the necessary queues.  This module is that subsystem, built
    from scratch on an internal spin latch and per-thread parkers.

    Semantics are Mesa-style, as in Java (the paper notes Java derives
    its monitor semantics from Mesa): a notified thread re-competes for
    the monitor, and callers of {!wait} must re-check their condition
    in a loop.

    The {e contended path} — what happens to an entrant that finds the
    monitor held — is pluggable (see {!backend}):

    - [Parker] (default): the classic entry queue.  Mesa barging: a
      released monitor may be grabbed by any arriving thread; a woken
      entrant that loses the race re-queues.  Entrants spin briefly
      before the first park.
    - [Hapax]: value-based FIFO admission through a {!Hapax} engine —
      constant-time ticketed arrival, constant-time grant on unlock,
      strict arrival-order admission with no barging among waiters.
    - [Delegate]: [Hapax] admission plus flat-combining delegation:
      {!delegate_or_acquire} lets a contender publish its critical
      section for the current owner to execute at release instead of
      waiting for the monitor itself. *)

type t

exception Illegal_monitor_state of string
(** Raised on release/wait/notify by a non-owner. *)

type backend = Parker | Hapax | Delegate

val backend_name : backend -> string
val backend_of_string : string -> backend option
val all_backends : backend list

type entry = Entry_immediate | Entry_spun | Entry_parked
(** How an acquisition went: straight in, queued but resolved within
    the spin phase (a park/unpark round trip avoided), or parked. *)

val entry_queued : entry -> bool
(** Did the entrant contend ([Entry_spun] or [Entry_parked])?  Drives
    the queued-acquisition statistics and events. *)

val create : ?backend:backend -> unit -> t

val create_locked :
  ?backend:backend ->
  ?tag:int ->
  ?events:Tl_events.Sink.t ->
  owner:int ->
  count:int ->
  unit ->
  t
(** A monitor born already owned — used when inflating a held thin
    lock, which transfers the thin count (§2.3.4).  [count] is the
    number of locks (≥ 1).  [tag] (default 0) is a caller-chosen
    identity — the thin scheme stores the object id, so deflaters and
    traces can name the object without holding it.  [events] (default
    [Sink.disabled]) receives [Contended_begin]/[Contended_end] events,
    [arg] = the tag, when entrants queue: begin when the entrant joins
    the queue (or takes a ticket, or publishes a delegation), end when
    it finally holds the monitor (or its delegated section has run).
    An entrant turned away by retirement leaves its episode open — it
    re-enters through a fresh monitor. *)

val tag : t -> int
val backend_of : t -> backend

val acquire : Tl_runtime.Runtime.env -> t -> unit
(** Lock the monitor, blocking if necessary.  Re-entrant: the owner's
    count is incremented.
    @raise Illegal_monitor_state if the monitor was retired — only
    possible for schemes that deflate; use {!acquire_live} there. *)

val try_acquire : Tl_runtime.Runtime.env -> t -> bool
(** Non-blocking acquire; never queues.  [false] on a busy {e or}
    retired monitor; use {!try_acquire_live} to tell them apart.
    Under an admission backend this also refuses while ticketed
    waiters are pending — barging over a granted ticket would steal
    its claim. *)

val acquire_live : Tl_runtime.Runtime.env -> t -> [ `Acquired of entry | `Retired ]
(** Like {!acquire}, but retirement-aware: [`Acquired how] on success;
    [`Retired] if a deflater retired the monitor before or while we
    waited — the caller must re-read the object's lock word and start
    over (the deflater rewrites it right after retiring).  Under the
    [Hapax]/[Delegate] backends a ticketed waiter can never see
    [`Retired]: its unclaimed ticket pins the monitor. *)

val try_acquire_live : Tl_runtime.Runtime.env -> t -> [ `Acquired | `Busy | `Retired ]

val delegate_or_acquire :
  Tl_runtime.Runtime.env ->
  t ->
  (unit -> unit) ->
  [ `Delegated | `Acquired of entry | `Retired ]
(** The [Delegate] backend's entry point: if the monitor is free (or
    already ours) acquire it normally ([`Acquired] — the caller runs
    the critical section itself and must release); if it is busy,
    publish [f] as a delegation request and wait for a combiner to run
    it ([`Delegated] — [f] has been executed exactly once, the monitor
    was {e never} owned by the caller, and any exception [f] raised is
    re-raised here).  A submitter that waits too long takes the
    monitor through the admission path and combines as a last resort,
    so [`Delegated] is bounded-wait.  On non-[Delegate] backends this
    is exactly {!acquire_live}. *)

val release : Tl_runtime.Runtime.env -> t -> unit
(** Unlock once; on the last release wakes one queued entrant (Parker)
    or grants the oldest pending ticket (Hapax/Delegate).  Under
    [Delegate], first executes pending delegation requests (bounded
    rounds) while still owner.
    @raise Illegal_monitor_state if the caller is not the owner. *)

val wait : ?timeout:float -> Tl_runtime.Runtime.env -> t -> unit
(** Release the monitor fully (saving the count), join the wait set,
    block until notified or [timeout] seconds elapse, then re-acquire
    and restore the count.
    @raise Illegal_monitor_state if the caller is not the owner. *)

val notify : Tl_runtime.Runtime.env -> t -> unit
(** Wake one waiter (if any).
    @raise Illegal_monitor_state if the caller is not the owner. *)

val notify_all : Tl_runtime.Runtime.env -> t -> unit

val owner : t -> int
(** Current owner's thread index, 0 if unowned.  Read under the
    monitor's latch; may be stale by return time but never torn. *)

val count : t -> int
(** Current lock count, read under the latch. *)

val entry_queue_length : t -> int
(** Queued entrants: entry-queue length (Parker) or pending tickets
    (Hapax/Delegate). *)

val wait_set_length : t -> int

val pending_delegations : t -> int
(** Announced-but-unfinished delegation requests (0 for non-[Delegate]
    backends). *)

val pipeline_quiet : t -> bool
(** Advisory: true when the admission pipeline is empty and no
    delegation is announced (trivially true under [Parker]).  Racy by
    design — the deflation controller reads it during the census walk
    to keep a shard away from eager policies while tickets are in
    flight; correctness never depends on it ({!retire_if_idle}
    re-checks under the latch). *)

val holds : Tl_runtime.Runtime.env -> t -> bool
(** Does the calling thread own the monitor? *)

val is_idle : t -> bool
(** Atomically (under the latch): not retired, unowned, empty entry
    queue, empty wait set, no notified waiter in flight back to
    re-acquisition — and, under an admission backend, an empty ticket
    pipeline and no announced delegation.  The deflation precondition,
    checked as one consistent snapshot rather than seven racy reads. *)

(** {1 Lifecycle handshake (non-quiescent deflation)}

    A deflater that has claimed the object's lock word (the
    deflation-in-progress bit) calls {!retire_if_idle}; from the moment
    it returns [true] every entrant gets [`Retired] from
    {!acquire_live}/{!try_acquire_live} and falls back to the object's
    lock word.  Retirement is sticky: a retired monitor is never
    reused — re-inflation allocates a fresh one — which is what makes a
    stale reference held across the deflation harmless. *)

val retire_if_idle : t -> bool
(** Atomically retire the monitor if it {!is_idle}; [false] if it is
    owned, queued on, waited on, has a waiter in flight, a pending
    ticket or delegation, or is already retired. *)

val is_retired : t -> bool

val observe_idle : t -> int
(** One reaper scan tick: if the monitor {!is_idle}, bump and return
    its consecutive-idle-scan count; otherwise reset the count to 0 and
    return 0.  Feeds the deflation policy engine. *)

val contended_episodes : t -> int
(** How many entrants ever had to queue on this monitor — the signal
    behind contention-averse deflation policies. *)

val idle_scans : t -> int
(** Current consecutive-idle-scan count (see {!observe_idle}). *)
