(** Fat locks: the heavyweight monitor subsystem.

    The paper assumes "a pre-existing heavy-weight system ... including
    queuing of unsatisfied lock requests, and the wait, notify, and
    notifyAll operations" (§2.1) and represents it as a multi-word
    structure with an owner, a lock count (not count-minus-one, Fig. 2)
    and the necessary queues.  This module is that subsystem, built
    from scratch on an internal spin latch and per-thread parkers.

    Semantics are Mesa-style, as in Java (the paper notes Java derives
    its monitor semantics from Mesa): a notified thread re-competes for
    the monitor, and callers of {!wait} must re-check their condition
    in a loop. *)

type t

exception Illegal_monitor_state of string
(** Raised on release/wait/notify by a non-owner. *)

val create : unit -> t

val create_locked : owner:int -> count:int -> t
(** A monitor born already owned — used when inflating a held thin
    lock, which transfers the thin count (§2.3.4).  [count] is the
    number of locks (≥ 1). *)

val acquire : Tl_runtime.Runtime.env -> t -> unit
(** Lock the monitor, blocking in the entry queue if necessary.
    Re-entrant: the owner's count is incremented. *)

val try_acquire : Tl_runtime.Runtime.env -> t -> bool
(** Non-blocking acquire; never queues. *)

val release : Tl_runtime.Runtime.env -> t -> unit
(** Unlock once; on the last release wakes one queued entrant.
    @raise Illegal_monitor_state if the caller is not the owner. *)

val wait : ?timeout:float -> Tl_runtime.Runtime.env -> t -> unit
(** Release the monitor fully (saving the count), join the wait set,
    block until notified or [timeout] seconds elapse, then re-acquire
    and restore the count.
    @raise Illegal_monitor_state if the caller is not the owner. *)

val notify : Tl_runtime.Runtime.env -> t -> unit
(** Wake one waiter (if any).
    @raise Illegal_monitor_state if the caller is not the owner. *)

val notify_all : Tl_runtime.Runtime.env -> t -> unit

val owner : t -> int
(** Current owner's thread index, 0 if unowned.  Read under the
    monitor's latch; may be stale by return time but never torn. *)

val count : t -> int
(** Current lock count, read under the latch. *)

val entry_queue_length : t -> int
val wait_set_length : t -> int

val holds : Tl_runtime.Runtime.env -> t -> bool
(** Does the calling thread own the monitor? *)

val is_idle : t -> bool
(** Atomically (under the latch): unowned, empty entry queue, empty
    wait set — the deflation precondition, checked as one consistent
    snapshot rather than three racy reads. *)
