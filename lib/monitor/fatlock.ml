open Tl_runtime

exception Illegal_monitor_state of string

type backend = Parker | Hapax | Delegate

let backend_name = function Parker -> "parker" | Hapax -> "hapax" | Delegate -> "delegate"

let backend_of_string = function
  | "parker" -> Some Parker
  | "hapax" -> Some Hapax
  | "delegate" -> Some Delegate
  | _ -> None

let all_backends = [ Parker; Hapax; Delegate ]

type entry = Entry_immediate | Entry_spun | Entry_parked

let entry_queued = function Entry_immediate -> false | Entry_spun | Entry_parked -> true

(* A waiter record travels from the wait set (or entry queue) to its
   thread.  [notified] tells a timed waiter whether it lost the race
   between timing out and being notified.  [in_queue] tracks entry-
   queue membership under the latch: because a thread's parker permit
   is shared across monitors, a park can return on a stale permit, and
   the waiter must know whether its record is still queued before
   re-queuing — otherwise a phantom record would absorb a future
   wakeup and strand another entrant. *)
type waiter = { env : Runtime.env; mutable notified : bool; mutable in_queue : bool }

type t = {
  latch : Spinlock.t; (* protects every mutable field below *)
  mutable owner : int; (* thread index, 0 = unowned *)
  mutable count : int; (* number of locks held by [owner] *)
  entry_queue : waiter Queue.t; (* Parker backend only *)
  wait_set : waiter Queue.t;
  mutable retired : bool;
      (* set (under the latch, while idle) by a deflater that won the
         lock-word handshake; sticky — a retired monitor is never
         resurrected, its object gets a fresh one on re-inflation *)
  mutable in_flight : int;
      (* waiters removed from the wait set (notify/timeout) but not yet
         re-entered: they are invisible to both queues, so this count is
         what stops [retire_if_idle] from deflating out from under
         them *)
  mutable contended_episodes : int; (* entrants that had to queue, ever *)
  mutable idle_scans : int; (* consecutive reaper scans that saw it idle *)
  tag : int;
      (* caller-chosen identity (the thin scheme stores the object id)
         carried so deflaters and event traces can name the object a
         monitor served without holding the object itself *)
  events : Tl_events.Sink.t; (* trace sink; Sink.disabled when untraced *)
  backend : backend;
  admission : Hapax.t option;
      (* Some for the Hapax/Delegate backends: the FIFO ticket engine
         (and, for Delegate, the combining slots) the contended path
         runs through instead of the entry queue *)
}

let create ?(backend = Parker) () =
  {
    latch = Spinlock.create ();
    owner = 0;
    count = 0;
    entry_queue = Queue.create ();
    wait_set = Queue.create ();
    retired = false;
    in_flight = 0;
    contended_episodes = 0;
    idle_scans = 0;
    tag = 0;
    events = Tl_events.Sink.disabled;
    backend;
    admission = (match backend with Parker -> None | Hapax | Delegate -> Some (Hapax.create ()));
  }

let create_locked ?(backend = Parker) ?(tag = 0) ?(events = Tl_events.Sink.disabled) ~owner
    ~count () =
  if owner <= 0 || count < 1 then invalid_arg "Fatlock.create_locked";
  let t = create ~backend () in
  { t with owner; count; tag; events }

let tag t = t.tag
let backend_of t = t.backend

let my_index (env : Runtime.env) = env.descriptor.Tid.index

let not_owner_error t op me =
  Illegal_monitor_state
    (Printf.sprintf "%s: thread %d does not own monitor (owner=%d)" op me t.owner)

let remove_from_queue q w =
  (* Queue has no removal; rebuild without [w].  Queues here are short
     (bounded by thread count). *)
  let keep = Queue.create () in
  Queue.iter (fun x -> if x != w then Queue.push x keep) q;
  Queue.clear q;
  Queue.transfer keep q

(* Can a fresh (ticketless) entrant claim the monitor?  Unowned is not
   enough under an admission backend: while the ticket pipeline is
   non-empty the next granted waiter has an exclusive right to the
   claim, and a barger here would steal it (and strand the FIFO). *)
let fast_claimable t =
  t.owner = 0
  && (match t.admission with None -> true | Some h -> Hapax.pipeline_empty h)

let claim_locked t me =
  t.owner <- me;
  t.count <- 1;
  t.idle_scans <- 0

let[@inline] emit_contended t me kind =
  if Tl_events.Sink.enabled t.events then
    Tl_events.Sink.emit t.events ~tid:me ~kind ~arg:t.tag

(* Backoff step budget a queued parker-backend entrant burns before its
   first park — the spin phase that turns a short-hold handoff into no
   park/unpark round trip at all.  Yield-flavored, so on this one-core
   testbed (and under the fiber scheduler) the spin lets the holder
   run. *)
let spin_before_park_budget = 12

(* Parker-backend contended entry.  Mesa-style with barging: a released
   monitor may be grabbed by any arriving thread; a woken entrant that
   loses the race re-queues (at the back).  Called with the latch held;
   releases it. *)
let parker_enter env t =
  let me = my_index env in
  let w = { env; notified = false; in_queue = true } in
  Queue.push w t.entry_queue;
  t.contended_episodes <- t.contended_episodes + 1;
  Spinlock.release t.latch;
  emit_contended t me Tl_events.Event.Contended_begin;
  (* Spin phase: watch the owner field (racy read — the latch-guarded
     claim below re-checks) for a bounded budget before parking. *)
  let backoff =
    Backoff.create ~policy:Backoff.Yield ~yield:(fun () -> Parker.yield env.parker) ()
  in
  let try_claim () =
    Spinlock.acquire t.latch;
    if t.retired then begin
      (* Retirement requires an empty entry queue, so our record was
         already popped (by the final release) before the deflater
         could retire — nothing to clean up, and no wakeup is lost:
         the monitor is defunct and the caller retries on the object,
         whose lock word the deflater resets. *)
      Spinlock.release t.latch;
      `Retired
    end
    else if t.owner = 0 then begin
      claim_locked t me;
      if w.in_queue then begin
        (* claimed while still queued (spin win or stale permit) *)
        remove_from_queue t.entry_queue w;
        w.in_queue <- false
      end;
      Spinlock.release t.latch;
      emit_contended t me Tl_events.Event.Contended_end;
      `Claimed
    end
    else begin
      if not w.in_queue then begin
        Queue.push w t.entry_queue;
        w.in_queue <- true
      end;
      Spinlock.release t.latch;
      `Busy
    end
  in
  let rec spin () =
    if Backoff.bounded backoff ~budget:spin_before_park_budget (fun () ->
           t.owner = 0 || t.retired)
    then
      match try_claim () with
      | `Retired -> `Retired
      | `Claimed -> `Acquired Entry_spun
      | `Busy -> spin ()
    else `Give_up
  in
  match spin () with
  | (`Retired | `Acquired _) as r -> r
  | `Give_up ->
      let rec wait_turn () =
        Parker.park env.parker;
        match try_claim () with
        | `Retired -> `Retired
        | `Claimed -> `Acquired Entry_parked
        | `Busy -> wait_turn ()
      in
      wait_turn ()

(* Admission-backend contended entry: take a ticket (constant time,
   under the latch — so a release that finds the pipeline non-empty is
   already obliged to grant it), then wait on the packed word outside
   the latch.  Called with the latch held; releases it. *)
let hapax_enter env t h =
  let me = my_index env in
  let ticket = Hapax.arrive h in
  t.contended_episodes <- t.contended_episodes + 1;
  Spinlock.release t.latch;
  emit_contended t me Tl_events.Event.Contended_begin;
  let how = Hapax.await env h ticket in
  Spinlock.acquire t.latch;
  (* A granted ticket's claim is uncontested: fast path and
     try_acquire refuse while the pipeline is non-empty, at most one
     grant is outstanding, and retirement needs an empty pipeline —
     which our unclaimed ticket forbids. *)
  assert (t.owner = 0 && not t.retired);
  claim_locked t me;
  Hapax.claim h;
  Spinlock.release t.latch;
  emit_contended t me Tl_events.Event.Contended_end;
  `Acquired (match how with `Spun -> Entry_spun | `Parked -> Entry_parked)

(* Entry protocol.  A retired monitor turns entrants away with
   [`Retired] — the caller re-reads the object's lock word, which the
   deflater rewrites to thin-unlocked right after retiring. *)
let acquire_live env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  if t.retired then begin
    Spinlock.release t.latch;
    `Retired
  end
  else if fast_claimable t then begin
    claim_locked t me;
    Spinlock.release t.latch;
    `Acquired Entry_immediate
  end
  else if t.owner = me then begin
    t.count <- t.count + 1;
    Spinlock.release t.latch;
    `Acquired Entry_immediate
  end
  else
    match t.admission with
    | Some h -> hapax_enter env t h
    | None -> parker_enter env t

let acquire env t =
  match acquire_live env t with
  | `Acquired _ -> ()
  | `Retired ->
      (* Only the thin scheme retires monitors, and it enters through
         [acquire_live]; the baselines' monitors live forever. *)
      raise (Illegal_monitor_state "acquire: monitor was retired (deflated)")

let try_acquire_live env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  let outcome =
    if t.retired then `Retired
    else if fast_claimable t then begin
      claim_locked t me;
      `Acquired
    end
    else if t.owner = me then begin
      t.count <- t.count + 1;
      `Acquired
    end
    else `Busy
  in
  Spinlock.release t.latch;
  outcome

let try_acquire env t =
  match try_acquire_live env t with `Acquired -> true | `Busy | `Retired -> false

(* Fully release an owned monitor (count already saved by the caller)
   and wake the next entrant, if any.  Must be called with the latch
   held; releases it.  Admission backends grant the oldest pending
   ticket instead of popping the entry queue — exactly one waiter is
   handed the (exclusive) right to claim, so no re-race, no re-queue. *)
let release_ownership_locked t =
  t.owner <- 0;
  t.count <- 0;
  match t.admission with
  | Some h -> (
      match Hapax.admit h with
      | Some ticket ->
          Spinlock.release t.latch;
          Hapax.wake h ticket
      | None -> Spinlock.release t.latch)
  | None -> (
      let next =
        if Queue.is_empty t.entry_queue then None else Some (Queue.pop t.entry_queue)
      in
      (match next with Some w -> w.in_queue <- false | None -> ());
      Spinlock.release t.latch;
      match next with None -> () | Some w -> Parker.unpark w.env.parker)

(* How many combining sweeps a releasing owner runs before handing the
   monitor on even if submitters keep arriving — bounds the combiner's
   extra work; stragglers run via the submitter's takeover path. *)
let drain_rounds = 4

let drain_delegations t =
  match t.admission with
  | Some h when t.backend = Delegate && Hapax.pending_delegations h > 0 ->
      let rec rounds k =
        if k > 0 && Hapax.pending_delegations h > 0 && Hapax.drain h > 0 then rounds (k - 1)
      in
      rounds drain_rounds
  | _ -> ()

let release env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  if t.owner <> me then begin
    Spinlock.release t.latch;
    raise (not_owner_error t "release" me)
  end;
  if t.count > 1 then begin
    t.count <- t.count - 1;
    Spinlock.release t.latch
  end
  else if t.backend = Delegate then begin
    (* Combine before handing off: execute critical sections published
       while we held the monitor.  Still owner, latch dropped — the
       closures are user code. *)
    Spinlock.release t.latch;
    drain_delegations t;
    Spinlock.acquire t.latch;
    (* Ownership cannot have moved: owner = me excludes every claim. *)
    release_ownership_locked t
  end
  else release_ownership_locked t

(* Backoff step budget a submitter waits for a combiner before taking
   the monitor through the admission path and running its own request
   (the combiner of last resort — this is what closes the race where
   the owner's final drain misses a just-published request). *)
let delegation_wait_budget = 24

let delegate_or_acquire env t f =
  let me = my_index env in
  Spinlock.acquire t.latch;
  if t.retired then begin
    Spinlock.release t.latch;
    `Retired
  end
  else if fast_claimable t then begin
    claim_locked t me;
    Spinlock.release t.latch;
    `Acquired Entry_immediate
  end
  else if t.owner = me then begin
    t.count <- t.count + 1;
    Spinlock.release t.latch;
    `Acquired Entry_immediate
  end
  else
    match t.admission with
    | Some h when t.backend = Delegate -> begin
        (* Busy monitor: publish the critical section instead of
           waiting for it.  The pending announcement happens under the
           latch so the deflation idle-check can never miss an
           in-flight delegated episode. *)
        let r = Hapax.make_request ~submitter:env.Runtime.parker f in
        Hapax.submit_begin h;
        t.contended_episodes <- t.contended_episodes + 1;
        Spinlock.release t.latch;
        if not (Hapax.try_publish h r) then begin
          (* slot pressure: withdraw and enter the lock ourselves *)
          Hapax.submit_cancel h;
          match acquire_live env t with
          | `Acquired e -> `Acquired e
          | `Retired -> `Retired
        end
        else begin
          emit_contended t me Tl_events.Event.Contended_begin;
          let backoff =
            Backoff.create ~policy:Backoff.Yield
              ~yield:(fun () -> Parker.yield env.parker)
              ()
          in
          let rec await_combiner () =
            if
              Backoff.bounded backoff ~budget:delegation_wait_budget (fun () ->
                  Hapax.finished r)
            then ()
            else begin
              (* Spin budget gone without a combiner reaching us.  If
                 the monitor is genuinely free (and no ticket pending)
                 we are the combiner of last resort — this closes the
                 race where the owner's final drain missed our
                 just-published request.  If it is merely busy, every
                 future release drains, so progress is someone else's
                 obligation: sleep instead of joining the admission
                 queue with a ticket we don't want. *)
              match try_acquire_live env t with
              | `Acquired ->
                  if not (Hapax.finished r) then ignore (Hapax.drain h : int);
                  release env t
              | `Busy ->
                  if not (Hapax.finished r) then begin
                    ignore (Parker.park_timeout env.parker ~seconds:2e-4 : bool);
                    Backoff.reset backoff;
                    await_combiner ()
                  end
              | `Retired ->
                  (* impossible: pending_delegations > 0 blocks retire *)
                  assert false
            end
          in
          await_combiner ();
          emit_contended t me Tl_events.Event.Contended_end;
          Hapax.reraise r;
          `Delegated
        end
      end
    | Some h -> hapax_enter env t h
    | None -> parker_enter env t

let wait ?timeout env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  if t.owner <> me then begin
    Spinlock.release t.latch;
    raise (not_owner_error t "wait" me)
  end;
  let saved_count = t.count in
  let w = { env; notified = false; in_queue = false } in
  Queue.push w t.wait_set;
  release_ownership_locked t;
  (* Park until notified (or timed out).  A stale permit from an
     earlier episode makes park return early; the [notified] flag
     filters that out. *)
  let rec block () =
    match timeout with
    | None ->
        Parker.park env.parker;
        if not w.notified then block ()
    | Some seconds ->
        let deadline_hit = not (Parker.park_timeout env.parker ~seconds) in
        if (not w.notified) && not deadline_hit then block ()
        else if deadline_hit then begin
          (* Timed out — but a notify may have happened between the
             timeout and this line; removing ourselves under the latch
             resolves the race.  Leaving the wait set on our own makes
             us in-flight (notify bumps the count for the waiters it
             pops). *)
          Spinlock.acquire t.latch;
          if not w.notified then begin
            remove_from_queue t.wait_set w;
            t.in_flight <- t.in_flight + 1
          end;
          Spinlock.release t.latch
        end
  in
  block ();
  (* Between leaving the wait set and re-acquiring we are invisible to
     both queues; the in-flight count (bumped by whoever removed us)
     keeps a concurrent deflater from retiring the monitor out from
     under this re-acquisition, so [acquire] cannot see it retired. *)
  acquire env t;
  (* Restore the saved recursion count. *)
  Spinlock.acquire t.latch;
  t.count <- saved_count;
  t.in_flight <- t.in_flight - 1;
  Spinlock.release t.latch

let notify env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  if t.owner <> me then begin
    Spinlock.release t.latch;
    raise (not_owner_error t "notify" me)
  end;
  let woken = if Queue.is_empty t.wait_set then None else Some (Queue.pop t.wait_set) in
  (match woken with
  | Some w ->
      w.notified <- true;
      t.in_flight <- t.in_flight + 1
  | None -> ());
  Spinlock.release t.latch;
  match woken with None -> () | Some w -> Parker.unpark w.env.parker

let notify_all env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  if t.owner <> me then begin
    Spinlock.release t.latch;
    raise (not_owner_error t "notifyAll" me)
  end;
  let woken = Queue.fold (fun acc w -> w :: acc) [] t.wait_set in
  Queue.clear t.wait_set;
  List.iter (fun w -> w.notified <- true) woken;
  t.in_flight <- t.in_flight + List.length woken;
  Spinlock.release t.latch;
  List.iter (fun w -> Parker.unpark w.env.parker) woken

let owner t = Spinlock.with_lock t.latch (fun () -> t.owner)
let count t = Spinlock.with_lock t.latch (fun () -> t.count)

let entry_queue_length t =
  Spinlock.with_lock t.latch (fun () ->
      match t.admission with
      | Some h -> Hapax.pending_tickets h
      | None -> Queue.length t.entry_queue)

let wait_set_length t = Spinlock.with_lock t.latch (fun () -> Queue.length t.wait_set)
let holds env t = Spinlock.with_lock t.latch (fun () -> t.owner = my_index env)

let pending_delegations t =
  match t.admission with Some h -> Hapax.pending_delegations h | None -> 0

(* Advisory (unlatched) view of the admission pipeline, for the
   deflation controller: a shard must not be steered toward an eager
   policy while any of its monitors still has ticketed arrivals or
   announced delegations in flight — deflating under a live pipeline
   composes badly with FIFO admission (see [fast_claimable]). *)
let pipeline_quiet t =
  match t.admission with
  | None -> true
  | Some h -> Hapax.pipeline_empty h && Hapax.pending_delegations h = 0

(* Idleness for deflation: unowned, no queued entrant, no waiter, no
   notified/timed-out waiter in flight back to re-acquisition — and,
   under an admission backend, an empty ticket pipeline and no
   announced delegation.  A delegated episode counts from its (latched)
   announcement until its closure has run, so the reaper can never
   retire a monitor out from under a published critical section. *)
let idle_locked t =
  t.owner = 0
  && Queue.is_empty t.entry_queue
  && Queue.is_empty t.wait_set
  && t.in_flight = 0
  && (match t.admission with
     | None -> true
     | Some h -> Hapax.pipeline_empty h && Hapax.pending_delegations h = 0)

let is_idle t = Spinlock.with_lock t.latch (fun () -> (not t.retired) && idle_locked t)

(* --- lifecycle handshake (non-quiescent deflation) --- *)

let retire_if_idle t =
  Spinlock.with_lock t.latch (fun () ->
      if (not t.retired) && idle_locked t then begin
        t.retired <- true;
        true
      end
      else false)

let is_retired t = Spinlock.with_lock t.latch (fun () -> t.retired)

let observe_idle t =
  Spinlock.with_lock t.latch (fun () ->
      if (not t.retired) && idle_locked t then begin
        t.idle_scans <- t.idle_scans + 1;
        t.idle_scans
      end
      else begin
        t.idle_scans <- 0;
        0
      end)

let contended_episodes t = Spinlock.with_lock t.latch (fun () -> t.contended_episodes)
let idle_scans t = Spinlock.with_lock t.latch (fun () -> t.idle_scans)
