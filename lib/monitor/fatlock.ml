open Tl_runtime

exception Illegal_monitor_state of string

(* A waiter record travels from the wait set (or entry queue) to its
   thread.  [notified] tells a timed waiter whether it lost the race
   between timing out and being notified.  [in_queue] tracks entry-
   queue membership under the latch: because a thread's parker permit
   is shared across monitors, a park can return on a stale permit, and
   the waiter must know whether its record is still queued before
   re-queuing — otherwise a phantom record would absorb a future
   wakeup and strand another entrant. *)
type waiter = { env : Runtime.env; mutable notified : bool; mutable in_queue : bool }

type t = {
  latch : Spinlock.t; (* protects every mutable field below *)
  mutable owner : int; (* thread index, 0 = unowned *)
  mutable count : int; (* number of locks held by [owner] *)
  entry_queue : waiter Queue.t;
  wait_set : waiter Queue.t;
  mutable retired : bool;
      (* set (under the latch, while idle) by a deflater that won the
         lock-word handshake; sticky — a retired monitor is never
         resurrected, its object gets a fresh one on re-inflation *)
  mutable in_flight : int;
      (* waiters removed from the wait set (notify/timeout) but not yet
         re-entered: they are invisible to both queues, so this count is
         what stops [retire_if_idle] from deflating out from under
         them *)
  mutable contended_episodes : int; (* entrants that had to queue, ever *)
  mutable idle_scans : int; (* consecutive reaper scans that saw it idle *)
  tag : int;
      (* caller-chosen identity (the thin scheme stores the object id)
         carried so deflaters and event traces can name the object a
         monitor served without holding the object itself *)
  events : Tl_events.Sink.t; (* trace sink; Sink.disabled when untraced *)
}

let create () =
  {
    latch = Spinlock.create ();
    owner = 0;
    count = 0;
    entry_queue = Queue.create ();
    wait_set = Queue.create ();
    retired = false;
    in_flight = 0;
    contended_episodes = 0;
    idle_scans = 0;
    tag = 0;
    events = Tl_events.Sink.disabled;
  }

let create_locked ?(tag = 0) ?(events = Tl_events.Sink.disabled) ~owner ~count () =
  if owner <= 0 || count < 1 then invalid_arg "Fatlock.create_locked";
  let t = create () in
  { t with owner; count; tag; events }

let tag t = t.tag

let my_index (env : Runtime.env) = env.descriptor.Tid.index

let not_owner_error t op me =
  Illegal_monitor_state
    (Printf.sprintf "%s: thread %d does not own monitor (owner=%d)" op me t.owner)

let remove_from_queue q w =
  (* Queue has no removal; rebuild without [w].  Queues here are short
     (bounded by thread count). *)
  let keep = Queue.create () in
  Queue.iter (fun x -> if x != w then Queue.push x keep) q;
  Queue.clear q;
  Queue.transfer keep q

(* Entry protocol, Mesa-style with barging: a released monitor may be
   grabbed by any arriving thread; a woken entrant that loses the race
   re-queues (at the back).  A retired monitor turns entrants away with
   [`Retired] — the caller re-reads the object's lock word, which the
   deflater rewrites to thin-unlocked right after retiring. *)
let acquire_live env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  if t.retired then begin
    Spinlock.release t.latch;
    `Retired
  end
  else if t.owner = 0 then begin
    t.owner <- me;
    t.count <- 1;
    t.idle_scans <- 0;
    Spinlock.release t.latch;
    `Acquired false
  end
  else if t.owner = me then begin
    t.count <- t.count + 1;
    Spinlock.release t.latch;
    `Acquired false
  end
  else begin
    let w = { env; notified = false; in_queue = true } in
    Queue.push w t.entry_queue;
    t.contended_episodes <- t.contended_episodes + 1;
    Spinlock.release t.latch;
    if Tl_events.Sink.enabled t.events then
      Tl_events.Sink.emit t.events ~tid:me ~kind:Tl_events.Event.Contended_begin ~arg:t.tag;
    let rec wait_turn () =
      Parker.park env.parker;
      Spinlock.acquire t.latch;
      if t.retired then begin
        (* Retirement requires an empty entry queue, so our record was
           already popped (by the final release) before the deflater
           could retire — nothing to clean up, and no wakeup is lost:
           the monitor is defunct and the caller retries on the object,
           whose lock word the deflater resets. *)
        Spinlock.release t.latch;
        `Retired
      end
      else if t.owner = 0 then begin
        t.owner <- me;
        t.count <- 1;
        t.idle_scans <- 0;
        if w.in_queue then begin
          (* woken by a stale permit while still queued *)
          remove_from_queue t.entry_queue w;
          w.in_queue <- false
        end;
        Spinlock.release t.latch;
        if Tl_events.Sink.enabled t.events then
          Tl_events.Sink.emit t.events ~tid:me ~kind:Tl_events.Event.Contended_end ~arg:t.tag;
        `Acquired true
      end
      else begin
        if not w.in_queue then begin
          Queue.push w t.entry_queue;
          w.in_queue <- true
        end;
        Spinlock.release t.latch;
        wait_turn ()
      end
    in
    wait_turn ()
  end

let acquire env t =
  match acquire_live env t with
  | `Acquired _ -> ()
  | `Retired ->
      (* Only the thin scheme retires monitors, and it enters through
         [acquire_live]; the baselines' monitors live forever. *)
      raise (Illegal_monitor_state "acquire: monitor was retired (deflated)")

let try_acquire_live env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  let outcome =
    if t.retired then `Retired
    else if t.owner = 0 then begin
      t.owner <- me;
      t.count <- 1;
      t.idle_scans <- 0;
      `Acquired
    end
    else if t.owner = me then begin
      t.count <- t.count + 1;
      `Acquired
    end
    else `Busy
  in
  Spinlock.release t.latch;
  outcome

let try_acquire env t =
  match try_acquire_live env t with `Acquired -> true | `Busy | `Retired -> false

(* Fully release an owned monitor (count already saved by the caller)
   and wake the next entrant, if any.  Must be called with the latch
   held; releases it. *)
let release_ownership_locked t =
  t.owner <- 0;
  t.count <- 0;
  let next = if Queue.is_empty t.entry_queue then None else Some (Queue.pop t.entry_queue) in
  (match next with Some w -> w.in_queue <- false | None -> ());
  Spinlock.release t.latch;
  match next with None -> () | Some w -> Parker.unpark w.env.parker

let release env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  if t.owner <> me then begin
    Spinlock.release t.latch;
    raise (not_owner_error t "release" me)
  end;
  if t.count > 1 then begin
    t.count <- t.count - 1;
    Spinlock.release t.latch
  end
  else release_ownership_locked t

let wait ?timeout env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  if t.owner <> me then begin
    Spinlock.release t.latch;
    raise (not_owner_error t "wait" me)
  end;
  let saved_count = t.count in
  let w = { env; notified = false; in_queue = false } in
  Queue.push w t.wait_set;
  release_ownership_locked t;
  (* Park until notified (or timed out).  A stale permit from an
     earlier episode makes park return early; the [notified] flag
     filters that out. *)
  let rec block () =
    match timeout with
    | None ->
        Parker.park env.parker;
        if not w.notified then block ()
    | Some seconds ->
        let deadline_hit = not (Parker.park_timeout env.parker ~seconds) in
        if (not w.notified) && not deadline_hit then block ()
        else if deadline_hit then begin
          (* Timed out — but a notify may have happened between the
             timeout and this line; removing ourselves under the latch
             resolves the race.  Leaving the wait set on our own makes
             us in-flight (notify bumps the count for the waiters it
             pops). *)
          Spinlock.acquire t.latch;
          if not w.notified then begin
            remove_from_queue t.wait_set w;
            t.in_flight <- t.in_flight + 1
          end;
          Spinlock.release t.latch
        end
  in
  block ();
  (* Between leaving the wait set and re-acquiring we are invisible to
     both queues; the in-flight count (bumped by whoever removed us)
     keeps a concurrent deflater from retiring the monitor out from
     under this re-acquisition, so [acquire] cannot see it retired. *)
  acquire env t;
  (* Restore the saved recursion count. *)
  Spinlock.acquire t.latch;
  t.count <- saved_count;
  t.in_flight <- t.in_flight - 1;
  Spinlock.release t.latch

let notify env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  if t.owner <> me then begin
    Spinlock.release t.latch;
    raise (not_owner_error t "notify" me)
  end;
  let woken = if Queue.is_empty t.wait_set then None else Some (Queue.pop t.wait_set) in
  (match woken with
  | Some w ->
      w.notified <- true;
      t.in_flight <- t.in_flight + 1
  | None -> ());
  Spinlock.release t.latch;
  match woken with None -> () | Some w -> Parker.unpark w.env.parker

let notify_all env t =
  let me = my_index env in
  Spinlock.acquire t.latch;
  if t.owner <> me then begin
    Spinlock.release t.latch;
    raise (not_owner_error t "notifyAll" me)
  end;
  let woken = Queue.fold (fun acc w -> w :: acc) [] t.wait_set in
  Queue.clear t.wait_set;
  List.iter (fun w -> w.notified <- true) woken;
  t.in_flight <- t.in_flight + List.length woken;
  Spinlock.release t.latch;
  List.iter (fun w -> Parker.unpark w.env.parker) woken

let owner t = Spinlock.with_lock t.latch (fun () -> t.owner)
let count t = Spinlock.with_lock t.latch (fun () -> t.count)

let entry_queue_length t =
  Spinlock.with_lock t.latch (fun () -> Queue.length t.entry_queue)

let wait_set_length t = Spinlock.with_lock t.latch (fun () -> Queue.length t.wait_set)
let holds env t = Spinlock.with_lock t.latch (fun () -> t.owner = my_index env)

(* Idleness for deflation: unowned, no queued entrant, no waiter, and
   no notified/timed-out waiter in flight back to re-acquisition. *)
let idle_locked t =
  t.owner = 0
  && Queue.is_empty t.entry_queue
  && Queue.is_empty t.wait_set
  && t.in_flight = 0

let is_idle t = Spinlock.with_lock t.latch (fun () -> (not t.retired) && idle_locked t)

(* --- lifecycle handshake (non-quiescent deflation) --- *)

let retire_if_idle t =
  Spinlock.with_lock t.latch (fun () ->
      if (not t.retired) && idle_locked t then begin
        t.retired <- true;
        true
      end
      else false)

let is_retired t = Spinlock.with_lock t.latch (fun () -> t.retired)

let observe_idle t =
  Spinlock.with_lock t.latch (fun () ->
      if (not t.retired) && idle_locked t then begin
        t.idle_scans <- t.idle_scans + 1;
        t.idle_scans
      end
      else begin
        t.idle_scans <- 0;
        0
      end)

let contended_episodes t = Spinlock.with_lock t.latch (fun () -> t.contended_episodes)
let idle_scans t = Spinlock.with_lock t.latch (fun () -> t.idle_scans)
