(* Each live monitor is registered with a back-reference to its
   object's lock word (just an [int Atomic.t] — tl_monitor cannot see
   tl_heap's object model and does not need to), which is what lets the
   lifecycle reaper walk the census and run the deflation handshake
   without a handle → object map on the side. *)
type entry = { fat : Fatlock.t; lockword : int Atomic.t }
type t = entry Index_table.t

(* The 23-bit monitor field of an inflated lock word splits into an
   18-bit slot and a 5-bit generation; Tl_heap.Header mirrors this
   split (a test asserts they agree — tl_monitor cannot depend on
   tl_heap). *)
let slot_width = 18
let generation_width = 5
let max_slot = (1 lsl slot_width) - 1

exception Stale = Index_table.Stale

let create ?shards () = Index_table.create ~max_index:max_slot ~generation_width ?shards ()
let allocate ?shard_hint t ~lockword fat = Index_table.allocate ?shard_hint t { fat; lockword }
let get t handle = (Index_table.get t handle).fat
let find t handle = Option.map (fun e -> e.fat) (Index_table.find t handle)
let find_entry t handle = Index_table.find t handle
let iter_live t f = Index_table.iter_live t f
let free t handle = Index_table.free t handle
let allocated t = Index_table.allocated t
let live t = Index_table.live t
let reuses t = Index_table.reuses t
let frees t = Index_table.frees t
let shard_count t = Index_table.shard_count t
let shard_of_handle t handle = Index_table.shard_of_handle t handle
