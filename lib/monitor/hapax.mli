(** Hapax-style contended-path engine: value-based FIFO admission plus
    flat-combining delegation.

    Modeled on Hapax Locks (Dice & Kogan; see PAPERS.md): mutual
    exclusion coordinated through {e values} packed in a single word
    rather than through queue nodes.  Arrival is one fetch-and-add on
    the packed word (constant time, no allocation); unlock hands the
    monitor to the next admitted arrival by bumping the grant field
    (constant time); admission order is exactly ticket order — FIFO,
    no barging among waiters.

    This module is an {e engine}, not a complete lock: [Fatlock] embeds
    one per monitor (backends [Hapax] and [Delegate]) and drives the
    protocol from under its latch.  The division of labor:

    - {b Packed admission word} [(arrivals | admitted)], 31 bits each.
      [arrive] (fetch-and-add, latch-held) issues tickets; [admit]
      (latch-held, by the releasing owner) grants the oldest
      un-admitted ticket; [claim] (latch-held, by the granted waiter)
      retires the ticket into ownership.  The invariant
      [claimed <= admitted <= arrivals] holds throughout, with at most
      one granted-but-unclaimed ticket — so a granted waiter's claim
      is uncontested provided the embedding lock refuses fresh
      (ticketless) entries while the pipeline is non-empty.
    - {b Waiting} is value-based: the waiter spins on the word until
      its ticket is granted ([Tl_runtime.Backoff], bounded), then
      publishes its parker in a slot indexed [ticket mod slots] and
      parks.  No per-waiter allocation: the parker already exists in
      the waiter's env, and slots are reused ring-style.  All slot
      races (publish vs. wake, slot collision between tickets [t] and
      [t + slots]) resolve through permit semantics — a spurious
      unpark just re-checks the word.
    - {b Delegation} (flat combining): instead of waiting for the
      monitor, a contender publishes its critical section as a closure
      in a combining slot; the current owner executes pending closures
      when it releases ([drain]).  A submitter that waits too long
      becomes the combiner of last resort by taking the lock through
      the admission path.  Each submitted request runs {e exactly
      once}: only an owner drains, a drained slot is emptied before
      execution, and [finished] is the submitter's only release
      condition.

    Capacity: 31-bit fields give ~2 × 10⁹ contended arrivals per
    engine.  A fresh [Fatlock] (hence a fresh engine) is allocated on
    every inflation, so the bound is per-inflation, not per-object. *)

type t

val create : ?slots:int -> ?combine_slots:int -> ?spin:int -> unit -> t
(** [slots] (default 1024, rounded up to a power of two) bounds the
    parker-publication ring; a waiter deeper than [slots] positions in
    the queue has nowhere to publish and degrades to yield-polling, so
    the ring is sized past realistic queue depths (8 KB per transient
    engine).  [combine_slots] (default 64) bounds
    concurrently-published delegation requests; publication failure
    falls back to the admission path.  [spin] (default 96) is the
    [Backoff] step budget a granted-pending waiter burns before
    parking — long relative to the parker backend's spin-before-park
    because each step is one uncontended load of the packed word, so
    most grants land mid-spin and skip the park/unpark pair. *)

(** {1 Admission (FIFO tickets)} *)

val arrive : t -> int
(** Take the next ticket (one fetch-and-add).  Call with the embedding
    lock's latch held, and only after deciding the fast path is closed
    — issuing a ticket obliges a future [admit] to grant it. *)

val granted : t -> int -> bool
(** Has [admit] reached this ticket?  Value-based: one atomic load. *)

val await : Tl_runtime.Runtime.env -> t -> int -> [ `Spun | `Parked ]
(** Wait (outside the latch) until the ticket is granted: bounded spin
    with yields, then publish the env's parker and park.  Returns how
    the wait ended — [`Spun] means no park was needed. *)

val admit : t -> int option
(** Grant the oldest pending ticket, if any ([Some ticket]); the
    caller must then [wake] it after releasing the latch.  Call with
    the latch held, as the owner, after clearing ownership — at most
    one grant may be outstanding. *)

val wake : t -> int -> unit
(** Unpark whoever published in the granted ticket's slot (no-op if
    the waiter is still spinning — it will observe the word). *)

val claim : t -> unit
(** Retire my granted ticket into ownership.  Latch held. *)

val pipeline_empty : t -> bool
(** No ticket is waiting, granted, or unclaimed ([arrivals = claimed]).
    While false, the embedding lock must refuse ticketless entry or a
    barger could steal a granted waiter's claim.  Latch held. *)

val pending_tickets : t -> int
(** [arrivals - claimed]: queued + granted-unclaimed tickets. *)

(** {1 Delegation (flat combining)} *)

type request
(** One submitted critical section: the closure, a finished flag, and
    the exception it raised, if any. *)

val make_request : submitter:Tl_runtime.Parker.t -> (unit -> unit) -> request
(** [submitter] is unparked when a combiner finishes the request, so a
    submitter sleeping out the wait learns of completion promptly. *)

val submit_begin : t -> unit
(** Announce a pending delegation ({e latch held} — this is what lets
    the deflation idle-check see in-flight delegated episodes before
    their slot publication is visible). *)

val submit_cancel : t -> unit
(** Withdraw an announced delegation whose publication failed (slot
    pressure); the submitter falls back to the admission path. *)

val try_publish : t -> request -> bool
(** Publish into a free combining slot; [false] if all slots are
    taken ([submit_cancel] and fall back). *)

val finished : request -> bool
(** Has a combiner executed the request?  The submitter's only release
    condition. *)

val reraise : request -> unit
(** Re-raise the exception the delegated closure raised on the
    combiner, if any (the combiner itself is shielded). *)

val drain : t -> int
(** Execute every published request, in slot order; returns how many
    ran.  {b Owner only} — exclusive ownership is what makes the
    pop-then-run sequence exactly-once.  Runs user closures: call
    without the latch. *)

val pending_delegations : t -> int
(** Announced-but-unfinished requests.  Non-zero pins the monitor
    against deflation. *)
