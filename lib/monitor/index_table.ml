exception Stale of int

(* Cells are immutable records behind per-cell atomics.  Storage is a
   two-level spine of fixed-size chunks: chunks are allocated once and
   never move, so a reader needs no lock and a growing table never
   copies live cells (growth replaces only the spine, whose entries are
   immutable chunk pointers). *)
type 'a cell = { value : 'a option; generation : int }

type shard = {
  lock : Mutex.t;
  mutable free : int list; (* recycled slots owned by this shard *)
  mutable fresh : int; (* next never-used slot in this shard's stripe *)
}

type 'a t = {
  spine : 'a cell Atomic.t array array Atomic.t;
  grow_mutex : Mutex.t; (* spine growth only; taken under a shard lock *)
  shards : shard array; (* length is a power of two *)
  slot_width : int;
  generation_mask : int;
  max_slot : int;
  allocations : int Atomic.t; (* total ever, the inflation census *)
  reuses : int Atomic.t; (* allocations served from a free list *)
  frees : int Atomic.t;
}

let chunk_width = 9
let chunk_size = 1 lsl chunk_width
let chunk_mask = chunk_size - 1

let default_slot_width = 18
let default_max_slot = (1 lsl default_slot_width) - 1
let default_generation_width = 5
let default_shards = 8

let bits_for n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  max 1 (go 0 n)

let new_chunk () = Array.init chunk_size (fun _ -> Atomic.make { value = None; generation = 0 })

let round_up_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let create ?(max_index = default_max_slot) ?(generation_width = default_generation_width)
    ?(shards = default_shards) () =
  if max_index < 1 then invalid_arg "Index_table.create: max_index";
  if generation_width < 0 || generation_width > 20 then
    invalid_arg "Index_table.create: generation_width";
  if shards < 1 then invalid_arg "Index_table.create: shards";
  let nshards = round_up_pow2 shards in
  {
    spine = Atomic.make [| new_chunk () |];
    grow_mutex = Mutex.create ();
    shards =
      Array.init nshards (fun k ->
          (* Shard [k] owns the slots congruent to [k] modulo the shard
             count; slot 0 is never used, so shard 0 starts one stripe
             in. *)
          { lock = Mutex.create (); free = []; fresh = (if k = 0 then nshards else k) });
    slot_width = bits_for max_index;
    generation_mask = (1 lsl generation_width) - 1;
    max_slot = max_index;
    allocations = Atomic.make 0;
    reuses = Atomic.make 0;
    frees = Atomic.make 0;
  }

let shard_count t = Array.length t.shards
let slot_width t = t.slot_width
let slot_of_handle t handle = handle land ((1 lsl t.slot_width) - 1)

(* Slots are striped: shard [k] owns the slots congruent to [k] modulo
   the shard count, so ownership is recoverable from the handle alone. *)
let shard_of_handle t handle =
  slot_of_handle t handle land (Array.length t.shards - 1)
let generation_of_handle t handle = (handle lsr t.slot_width) land t.generation_mask
let handle t ~slot ~generation = (generation lsl t.slot_width) lor slot

(* Make sure the chunk holding [slot] exists.  Called with the
   allocating shard's lock held; the grow mutex is strictly inner, and
   no path takes a shard lock while holding it. *)
let ensure_chunk t slot =
  let ci = slot lsr chunk_width in
  if ci >= Array.length (Atomic.get t.spine) then begin
    Mutex.lock t.grow_mutex;
    let spine = Atomic.get t.spine in
    let n = Array.length spine in
    if ci >= n then begin
      let n' = max (ci + 1) (2 * n) in
      let bigger = Array.init n' (fun i -> if i < n then spine.(i) else new_chunk ()) in
      Atomic.set t.spine bigger
    end;
    Mutex.unlock t.grow_mutex
  end

let cell t slot = (Atomic.get t.spine).(slot lsr chunk_width).(slot land chunk_mask)

(* Reserve a slot from one shard: its free list first, else a fresh
   slot from its stripe.  Returns the handle, or None if the shard is
   dry. *)
let try_allocate_in t shard value =
  Mutex.lock shard.lock;
  let stride = Array.length t.shards in
  let reserved =
    match shard.free with
    | slot :: rest ->
        shard.free <- rest;
        Some (slot, true)
    | [] ->
        if shard.fresh <= t.max_slot then begin
          let slot = shard.fresh in
          shard.fresh <- slot + stride;
          Some (slot, false)
        end
        else None
  in
  match reserved with
  | None ->
      Mutex.unlock shard.lock;
      None
  | Some (slot, reused) ->
      ensure_chunk t slot;
      (* A recycled slot keeps the generation its free bumped it to, so
         handles minted before the free no longer match. *)
      let generation = if reused then (Atomic.get (cell t slot)).generation else 0 in
      Atomic.set (cell t slot) { value = Some value; generation };
      Mutex.unlock shard.lock;
      ignore (Atomic.fetch_and_add t.allocations 1);
      if reused then ignore (Atomic.fetch_and_add t.reuses 1);
      Some (handle t ~slot ~generation)

let allocate ?shard_hint t value =
  let nshards = Array.length t.shards in
  let home =
    (match shard_hint with Some h -> h | None -> (Domain.self () :> int)) land (nshards - 1)
  in
  (* Start at the caller's home shard — uncontended in the common case —
     and steal from neighbours rather than fail while any shard still
     has capacity. *)
  let rec probe k =
    if k = nshards then failwith "Index_table.allocate: indices exhausted"
    else
      match try_allocate_in t t.shards.((home + k) land (nshards - 1)) value with
      | Some handle -> handle
      | None -> probe (k + 1)
  in
  probe 0

let get t handle =
  let slot = slot_of_handle t handle in
  let generation = generation_of_handle t handle in
  if slot <= 0 || slot > t.max_slot then invalid_arg "Index_table.get: bad index";
  let spine = Atomic.get t.spine in
  let ci = slot lsr chunk_width in
  if ci >= Array.length spine then invalid_arg "Index_table.get: unallocated index";
  let c = Atomic.get spine.(ci).(slot land chunk_mask) in
  match c.value with
  | Some value when c.generation = generation -> value
  | Some _ -> raise (Stale handle)
  | None ->
      if c.generation = 0 then invalid_arg "Index_table.get: unallocated index"
      else raise (Stale handle)

let find t handle =
  match get t handle with
  | value -> Some value
  | exception (Stale _ | Invalid_argument _) -> None

let free t handle =
  let slot = slot_of_handle t handle in
  let generation = generation_of_handle t handle in
  if slot <= 0 || slot > t.max_slot then invalid_arg "Index_table.free: bad index";
  let shard = t.shards.(slot land (Array.length t.shards - 1)) in
  Mutex.lock shard.lock;
  let c = Atomic.get (cell t slot) in
  match c.value with
  | Some _ when c.generation = generation ->
      (* Bumping the generation at free time invalidates every
         outstanding handle to this incarnation; the slot re-enters
         circulation through the owning shard's free list. *)
      Atomic.set (cell t slot)
        { value = None; generation = (generation + 1) land t.generation_mask };
      shard.free <- slot :: shard.free;
      Mutex.unlock shard.lock;
      ignore (Atomic.fetch_and_add t.frees 1)
  | _ ->
      Mutex.unlock shard.lock;
      raise (Stale handle)

(* Racy-by-design census walk: each cell is read atomically, but the
   set of live entries can change mid-scan.  Callers (the lifecycle
   reaper) must treat every visited entry as a candidate to re-verify,
   not as a consistent snapshot. *)
let iter_live t f =
  let spine = Atomic.get t.spine in
  let upper = min t.max_slot ((Array.length spine * chunk_size) - 1) in
  for slot = 1 to upper do
    let c = Atomic.get spine.(slot lsr chunk_width).(slot land chunk_mask) in
    match c.value with
    | Some value -> f ~handle:(handle t ~slot ~generation:c.generation) value
    | None -> ()
  done

let allocated t = Atomic.get t.allocations
let frees t = Atomic.get t.frees
let reuses t = Atomic.get t.reuses
let live t = allocated t - frees t
