open Tl_core

let pack_thin ?config runtime =
  let ctx = Thin.create_with ?config runtime in
  Scheme_intf.pack ~deflate_idle:(Thin.deflate_idle ctx) (module Thin) ctx

let rename name packed = { packed with Scheme_intf.name }

let thin_variant name config runtime = rename name (pack_thin ~config runtime)

let table : (string * string * (Tl_runtime.Runtime.t -> Scheme_intf.packed)) list =
  [
    ("thin", "thin locks, paper's final configuration", pack_thin ?config:None);
    ( "thin-unlkcas",
      "thin locks releasing with compare-and-swap (Fig. 6 UnlkC&S)",
      thin_variant "thin-unlkcas" { Thin.default_config with unlock_with_cas = true } );
    ( "thin-mpsync",
      "thin locks with an extra fence per operation (Fig. 6 MP Sync)",
      thin_variant "thin-mpsync" { Thin.default_config with extra_fence = true } );
    ( "thin-busy",
      "thin locks with pure busy-wait contention spinning",
      thin_variant "thin-busy"
        { Thin.default_config with backoff_policy = Tl_runtime.Backoff.Busy } );
    ( "thin-yield",
      "thin locks spinning with yields but never sleeping",
      thin_variant "thin-yield"
        { Thin.default_config with backoff_policy = Tl_runtime.Backoff.Yield } );
    ( "thin-count2",
      "thin locks with a 2-bit nest count (count-width ablation, §3.2)",
      thin_variant "thin-count2" { Thin.default_config with count_width = 2 } );
    ( "thin-count4",
      "thin locks with a 4-bit nest count",
      thin_variant "thin-count4" { Thin.default_config with count_width = 4 } );
    ( "thin-nostats",
      "thin locks without statistics recording (pure-time runs)",
      thin_variant "thin-nostats" { Thin.default_config with record_stats = false } );
    ( "thin-hapax",
      "thin locks inflating to FIFO ticket-admission monitors (Hapax contended path)",
      thin_variant "thin-hapax"
        { Thin.default_config with fat_backend = Tl_monitor.Fatlock.Hapax } );
    ( "thin-delegate",
      "thin locks inflating to flat-combining monitors (delegated critical sections)",
      thin_variant "thin-delegate"
        { Thin.default_config with fat_backend = Tl_monitor.Fatlock.Delegate } );
    ( "jdk111",
      "Sun JDK 1.1.1 port: global monitor cache with recycling",
      fun runtime -> Scheme_intf.pack (module Jdk111) (Jdk111.create runtime) );
    ( "ibm112",
      "IBM JDK 1.1.2: 32 hot locks over a monitor cache",
      fun runtime -> Scheme_intf.pack (module Ibm112) (Ibm112.create runtime) );
    ( "cjm",
      "Compact Java Monitors: headerless, transient hash-table monitors",
      fun runtime -> Scheme_intf.pack (module Tl_cjm.Cjm) (Tl_cjm.Cjm.create runtime) );
    ( "fat",
      "always-inflated control: a dedicated fat monitor per object",
      fun runtime -> Scheme_intf.pack (module Fat_only) (Fat_only.create runtime) );
    ( "fat-hapax",
      "always-inflated control over FIFO ticket-admission monitors",
      fun runtime ->
        rename "fat-hapax"
          (Scheme_intf.pack (module Fat_only)
             (Fat_only.create_with ~backend:Tl_monitor.Fatlock.Hapax runtime)) );
    ( "fat-delegate",
      "always-inflated control over flat-combining monitors",
      fun runtime ->
        rename "fat-delegate"
          (Scheme_intf.pack (module Fat_only)
             (Fat_only.create_with ~backend:Tl_monitor.Fatlock.Delegate runtime)) );
    ( "mcs",
      "MCS queue locks with monitor semantics layered on top (§4.1)",
      fun runtime -> Scheme_intf.pack (module Mcs) (Mcs.create runtime) );
    ( "nosync",
      "no locking at all (Fig. 6 NOP; not a correct monitor!)",
      fun runtime -> Scheme_intf.pack (module Nosync) (Nosync.create runtime) );
  ]

let names () = List.map (fun (n, _, _) -> n) table

let find name =
  List.find_map (fun (n, _, make) -> if String.equal n name then Some make else None) table

let find_exn name runtime =
  match find name with
  | Some make -> make runtime
  | None ->
      invalid_arg
        (Printf.sprintf "unknown scheme %S (known: %s)" name (String.concat ", " (names ())))

let describe name =
  List.find_map (fun (n, d, _) -> if String.equal n name then Some d else None) table

let paper_trio = [ "jdk111"; "ibm112"; "thin" ]
let fig6_variants = [ "nosync"; "thin"; "thin-mpsync"; "thin-unlkcas" ]
