open Tl_core
module Fatlock = Tl_monitor.Fatlock
module Montable = Tl_monitor.Montable
module Obj_model = Tl_heap.Obj_model
module Header = Tl_heap.Header

type ctx = {
  runtime : Tl_runtime.Runtime.t;
  montable : Montable.t;
  stats : Lock_stats.t;
  backend : Fatlock.backend;
}

let name = "fat"

let create_with ?(backend = Fatlock.Parker) runtime =
  { runtime; montable = Montable.create (); stats = Lock_stats.create (); backend }

let create runtime = create_with runtime
let stats ctx = ctx.stats

(* Find the object's monitor, installing one on first use.  Losing the
   installation race frees the unused slot back to the table. *)
let rec monitor_of ctx obj =
  let lw = Obj_model.lockword obj in
  let word = Atomic.get lw in
  if Header.is_inflated word then Montable.get ctx.montable (Header.monitor_index word)
  else begin
    let fat = Fatlock.create ~backend:ctx.backend () in
    let monitor_index = Montable.allocate ctx.montable ~lockword:lw fat in
    let inflated = Header.inflated_word ~hdr:(Header.hdr_bits word) ~monitor_index in
    if Atomic.compare_and_set lw word inflated then fat
    else begin
      Montable.free ctx.montable monitor_index;
      monitor_of ctx obj
    end
  end

let acquire ctx env obj =
  let fat = monitor_of ctx obj in
  let queued = not (Fatlock.try_acquire env fat) in
  if queued then Fatlock.acquire env fat;
  let depth = Fatlock.count fat in
  if depth = 1 && not queued then Lock_stats.record_acquire_unlocked ctx.stats obj
  else if depth > 1 then Lock_stats.record_acquire_nested ctx.stats ~depth
  else Lock_stats.record_acquire_fat ctx.stats obj ~queued ~depth

let release ctx env obj =
  Fatlock.release env (monitor_of ctx obj);
  Lock_stats.record_release ctx.stats `Fat

let wait ?timeout ctx env obj =
  Lock_stats.record_wait ctx.stats;
  Fatlock.wait ?timeout env (monitor_of ctx obj)

let notify ctx env obj =
  Lock_stats.record_notify ctx.stats;
  Fatlock.notify env (monitor_of ctx obj)

let notify_all ctx env obj =
  Lock_stats.record_notify_all ctx.stats;
  Fatlock.notify_all env (monitor_of ctx obj)

let holds ctx env obj =
  let word = Atomic.get (Obj_model.lockword obj) in
  Header.is_inflated word
  && Fatlock.holds env (Montable.get ctx.montable (Header.monitor_index word))
