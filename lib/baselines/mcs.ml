open Tl_core
module Obj_model = Tl_heap.Obj_model
module Header = Tl_heap.Header
module Backoff = Tl_runtime.Backoff
module Parker = Tl_runtime.Parker
module Index_table = Tl_monitor.Index_table

(* One queue node per acquisition episode.  [must_wait] is the flag
   the waiter spins on; [next] is filled in by the successor.

   [tail] holds nodes directly, with a sentinel [nil] node for
   "empty": [Atomic.compare_and_set] uses physical equality, and a
   freshly-boxed [Some node] would never compare equal to the cell's
   contents — the release CAS must compare the physically-stable node
   itself.  [next] is only ever read and written (never CASed), so an
   option is fine there. *)
type node = { must_wait : bool Atomic.t; next : node option Atomic.t }

let nil = { must_wait = Atomic.make false; next = Atomic.make None }

let fresh_node () = { must_wait = Atomic.make false; next = Atomic.make None }

type waiter = { parker : Parker.t; mutable notified : bool }

type mon = {
  tail : node Atomic.t;
  (* The fields below are written only while holding the queue lock. *)
  mutable owner : int;
  mutable count : int;
  mutable holder_node : node;
  wait_set : waiter Queue.t;
}

let fresh_mon () =
  { tail = Atomic.make nil; owner = 0; count = 0; holder_node = nil; wait_set = Queue.create () }

type ctx = {
  runtime : Tl_runtime.Runtime.t;
  table : mon Index_table.t;
  stats : Lock_stats.t;
}

let name = "mcs"

let create runtime = { runtime; table = Index_table.create (); stats = Lock_stats.create () }
let stats ctx = ctx.stats

let rec monitor_of ctx obj =
  let lw = Obj_model.lockword obj in
  let word = Atomic.get lw in
  if Header.is_inflated word then Index_table.get ctx.table (Header.monitor_index word)
  else begin
    let monitor_index = Index_table.allocate ctx.table (fresh_mon ()) in
    let inflated = Header.inflated_word ~hdr:(Header.hdr_bits word) ~monitor_index in
    if Atomic.compare_and_set lw word inflated then Index_table.get ctx.table monitor_index
    else begin
      (* Lost the installation race; nobody ever saw this handle, so
         the slot can be recycled immediately. *)
      Index_table.free ctx.table monitor_index;
      monitor_of ctx obj
    end
  end

let my_index (env : Tl_runtime.Runtime.env) = env.Tl_runtime.Runtime.descriptor.Tl_runtime.Tid.index

(* Classic MCS acquire: one atomic exchange; spin on our own node. *)
let mcs_lock mon node =
  Atomic.set node.next None;
  let pred = Atomic.exchange mon.tail node in
  if pred == nil then false (* uncontended *)
  else begin
    Atomic.set node.must_wait true;
    Atomic.set pred.next (Some node);
    let backoff = Backoff.create () in
    while Atomic.get node.must_wait do
      Backoff.once backoff
    done;
    true
  end

(* Classic MCS release: one compare-and-swap in the common case — the
   atomic operation the paper contrasts with thin locks' plain
   store. *)
let mcs_unlock mon node =
  match Atomic.get node.next with
  | Some successor -> Atomic.set successor.must_wait false
  | None ->
      if Atomic.compare_and_set mon.tail node nil then ()
      else begin
        (* A successor is linking itself in; wait for the link. *)
        let backoff = Backoff.create () in
        let rec await () =
          match Atomic.get node.next with
          | Some successor -> Atomic.set successor.must_wait false
          | None ->
              Backoff.once backoff;
              await ()
        in
        await ()
      end

let lock_mon env mon =
  let me = my_index env in
  if mon.owner = me then begin
    mon.count <- mon.count + 1;
    `Nested mon.count
  end
  else begin
    let node = fresh_node () in
    let contended = mcs_lock mon node in
    mon.owner <- me;
    mon.count <- 1;
    mon.holder_node <- node;
    if contended then `Contended else `Fast
  end

let unlock_mon env mon =
  let me = my_index env in
  if mon.owner <> me then
    raise
      (Tl_monitor.Fatlock.Illegal_monitor_state
         (Printf.sprintf "mcs release: thread %d is not the owner (%d)" me mon.owner));
  if mon.count > 1 then mon.count <- mon.count - 1
  else begin
    let node = mon.holder_node in
    assert (node != nil);
    mon.owner <- 0;
    mon.count <- 0;
    mon.holder_node <- nil;
    mcs_unlock mon node
  end

let acquire ctx env obj =
  let mon = monitor_of ctx obj in
  match lock_mon env mon with
  | `Fast -> Lock_stats.record_acquire_unlocked ctx.stats obj
  | `Nested depth -> Lock_stats.record_acquire_nested ctx.stats ~depth
  | `Contended -> Lock_stats.record_acquire_fat ctx.stats obj ~queued:true ~depth:1

let release ctx env obj =
  unlock_mon env (monitor_of ctx obj);
  Lock_stats.record_release ctx.stats `Fat

let full_unlock env mon =
  ignore env;
  let node = mon.holder_node in
  assert (node != nil);
  mon.owner <- 0;
  mon.count <- 0;
  mon.holder_node <- nil;
  mcs_unlock mon node

let remove_waiter q w =
  let keep = Queue.create () in
  Queue.iter (fun x -> if x != w then Queue.push x keep) q;
  Queue.clear q;
  Queue.transfer keep q

let wait ?timeout ctx env obj =
  let mon = monitor_of ctx obj in
  let me = my_index env in
  if mon.owner <> me then
    raise (Tl_monitor.Fatlock.Illegal_monitor_state "mcs wait: not owner");
  Lock_stats.record_wait ctx.stats;
  let saved = mon.count in
  let w = { parker = env.Tl_runtime.Runtime.parker; notified = false } in
  Queue.push w mon.wait_set;
  full_unlock env mon;
  (* Park until notified; filter out stale permits.  On timeout we may
     still be in the wait set — removal happens after re-acquiring,
     when touching the queue is safe again. *)
  let rec block () =
    match timeout with
    | None ->
        Parker.park w.parker;
        if not w.notified then block ()
    | Some seconds ->
        let consumed = Parker.park_timeout w.parker ~seconds in
        if consumed && not w.notified then block ()
  in
  block ();
  ignore (lock_mon env mon);
  if not w.notified then remove_waiter mon.wait_set w;
  mon.count <- saved

let notify ctx env obj =
  let mon = monitor_of ctx obj in
  if mon.owner <> my_index env then
    raise (Tl_monitor.Fatlock.Illegal_monitor_state "mcs notify: not owner");
  Lock_stats.record_notify ctx.stats;
  if not (Queue.is_empty mon.wait_set) then begin
    let w = Queue.pop mon.wait_set in
    w.notified <- true;
    Parker.unpark w.parker
  end

let notify_all ctx env obj =
  let mon = monitor_of ctx obj in
  if mon.owner <> my_index env then
    raise (Tl_monitor.Fatlock.Illegal_monitor_state "mcs notifyAll: not owner");
  Lock_stats.record_notify_all ctx.stats;
  while not (Queue.is_empty mon.wait_set) do
    let w = Queue.pop mon.wait_set in
    w.notified <- true;
    Parker.unpark w.parker
  done

let holds ctx env obj = (monitor_of ctx obj).owner = my_index env
