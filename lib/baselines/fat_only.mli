(** Always-inflated control scheme.

    Every object gets a dedicated fat monitor on first use, installed
    in its header word with the inflated encoding.  No monitor cache,
    no thin state: this isolates the cost of the fat-lock machinery
    itself, and is the natural control for measuring what thin locks
    save on the uncontended paths. *)

include Tl_core.Scheme_intf.S

val create_with : ?backend:Tl_monitor.Fatlock.backend -> Tl_runtime.Runtime.t -> ctx
(** [create] with an explicit contended-path backend for the monitors
    (default [Parker]; see [Fatlock.backend]). *)
