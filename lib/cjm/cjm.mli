(** Compact Java Monitors: the headerless locking scheme.

    Dice & Kogan's counterpoint to the thin-lock paper: instead of
    spending header bits on a lock word, keep {e no} per-object lock
    state at all.  Objects map to monitors through a transient
    hash-based side table, keyed on object identity, and an entry
    exists only while the object is locked or contended:

    - An uncontended acquire claims the object's table entry inline
      (owner + depth fields, no [Fatlock]) under the entry's shard
      stripe — the "hash-lock claim" that replaces the header CAS.
    - First contention (or a [wait]) materialises a real monitor with
      [Fatlock.create_locked], transferring the inline owner and depth,
      and emits [Event.Cjm_monitor_create].
    - The monitor lifecycle is trivial: when the last pinned operation
      leaves and the monitor is idle (unowned, no queue, no wait set),
      the unpinner removes the entry and emits
      [Event.Cjm_monitor_evaporate].  No deflation-in-progress bit, no
      handshake, no reaper — the Tasuki machinery the thin scheme needs
      simply has no counterpart here.

    The table is open-addressed with linear probing and backward-shift
    deletion (no tombstones, so unbounded churn never decays a probe
    sequence), striped into independently locked shards, with per-shard
    free lists recycling entry records.  Inline nesting depth is a full
    machine int: CJM has no count-width ceiling and therefore no
    overflow inflation. *)

type config = {
  shards : int;  (** stripe count, rounded up to a power of two *)
  initial_capacity : int;  (** per-shard slot count, power of two *)
  record_stats : bool;
}

val default_config : config
(** 64 shards, 64 slots each, stats on. *)

type ctx

val name : string

val create : Tl_runtime.Runtime.t -> ctx

val create_with :
  ?config:config -> ?events:Tl_events.Sink.t -> Tl_runtime.Runtime.t -> ctx

val acquire : ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit
val release : ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit

val wait :
  ?timeout:float -> ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit

val notify : ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit
val notify_all : ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit
val stats : ctx -> Tl_core.Lock_stats.t
val holds : ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> bool

(** {1 Table census — conservation invariants, pinned by test} *)

val live_entries : ctx -> int
(** Entries currently in the table (inline-held + inflated + pinned),
    summed across shards under their stripes.  Zero once every lock is
    released and every operation has unpinned. *)

val monitors_created : ctx -> int
(** Monitors ever materialised ([Cjm_monitor_create] census). *)

val monitors_evaporated : ctx -> int
(** Monitors ever evaporated.  [monitors_created ctx -
    monitors_evaporated ctx] is the number of live fat monitors; it
    must return to zero when the table drains. *)
