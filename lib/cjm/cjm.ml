(* Compact Java Monitors: no per-object lock word at all.  Lock state
   lives in a transient open-addressed table keyed on object identity,
   striped into independently mutexed shards.  An entry exists only
   while its object is locked, contended, or pinned by an in-flight
   blocking operation; the monitor lifecycle is trivial — created at
   first contention, removed by whichever mutator finds it idle — so
   none of the thin scheme's deflation machinery (DIP bit, handshake,
   reaper) has a counterpart here.

   Lock ordering: shard stripe, then Fatlock latch — never the
   reverse.  Every Fatlock call made under a stripe is non-blocking
   ([try_acquire], [release], [notify], [notify_all], [is_idle],
   [count], [create_locked]); the blocking calls ([acquire], [wait])
   run outside the stripe, protected by a pin ([refs]) taken under it.

   Pin discipline: inline paths (fast/nested acquire, inline release,
   notify, holds) complete inside one stripe critical section and need
   no pin — the entry is kept alive by [owner <> 0].  [refs] counts
   only operations blocked outside the stripe; an entry is removed
   only under its stripe with [refs = 0], so a pinned record can never
   be recycled under an operation that holds a reference to it. *)

module Runtime = Tl_runtime.Runtime
module Tid = Tl_runtime.Tid
module Obj_model = Tl_heap.Obj_model
module Fatlock = Tl_monitor.Fatlock
module Lock_stats = Tl_core.Lock_stats
module Sink = Tl_events.Sink
module Ev = Tl_events.Event

type config = { shards : int; initial_capacity : int; record_stats : bool }

let default_config = { shards = 64; initial_capacity = 64; record_stats = true }

type entry = {
  mutable key : int;  (* object id; 0 = free-listed record *)
  mutable owner : int;  (* inline owner tid index, 0 = unowned *)
  mutable depth : int;  (* inline nesting depth — a full int, no ceiling *)
  mutable fat : Fatlock.t option;
  mutable refs : int;  (* pins by operations blocked outside the stripe *)
}

type shard = {
  lock : Mutex.t;
  mutable slots : entry option array;  (* length a power of two *)
  mutable mask : int;
  mutable used : int;
  mutable free : entry list;  (* recycled records, capped *)
  mutable free_len : int;
}

type ctx = {
  shards : shard array;
  shard_mask : int;
  config : config;
  stats : Lock_stats.t;
  events : Sink.t;
  tracing : bool;
  created : int Atomic.t;
  evaporated : int Atomic.t;
}

let name = "cjm"

let[@inline] emit ctx ~tid kind ~arg = Sink.emit ctx.events ~tid ~kind ~arg

(* Lifecycle transitions take a ticket stamp (see [Sink.emit_ordered]):
   both are emitted under the stripe lock, after every event of the
   monitor generation they open or close, and the ticket makes the
   drained stream agree — a creation sorts after the thin hold it
   inflates, an evaporation after the last release that let the table
   entry drain.  Epoch stamps would let them drift thousands of places
   on a busy shard and the relaxed oracle would have to re-derive the
   generation pairing by search. *)
let[@inline] emit_lifecycle ctx ~tid kind ~arg =
  Sink.emit_ordered ctx.events ~tid ~kind ~arg
let[@inline] my_index (env : Runtime.env) = env.descriptor.Tid.index

(* {1 The table} *)

(* Fibonacci scramble: object ids are dense and sequential, so spread
   them before slicing bits.  Slot index uses the low bits, shard
   index a disjoint higher range, so the two stay decorrelated. *)
let[@inline] mix id = id * 0x9E3779B9

let[@inline] shard_for ctx id = ctx.shards.((mix id lsr 20) land ctx.shard_mask)
let[@inline] slot_base sh key = mix key land sh.mask

(* Slot index of [key], or -1.  The load factor is kept at or below
   1/2 by [grow], so a [None] always terminates the probe. *)
let find_index sh key =
  let i = ref (slot_base sh key) in
  let res = ref (-1) in
  (try
     while true do
       match sh.slots.(!i) with
       | None -> raise Exit
       | Some e when e.key = key ->
           res := !i;
           raise Exit
       | Some _ -> i := (!i + 1) land sh.mask
     done
   with Exit -> ());
  !res

let insert_entry sh e =
  let i = ref (slot_base sh e.key) in
  while sh.slots.(!i) <> None do
    i := (!i + 1) land sh.mask
  done;
  sh.slots.(!i) <- Some e

let grow sh =
  let old = sh.slots in
  let cap = 2 * (sh.mask + 1) in
  sh.slots <- Array.make cap None;
  sh.mask <- cap - 1;
  Array.iter (function None -> () | Some e -> insert_entry sh e) old

let free_list_cap = 64

(* Backward-shift deletion: close the hole by walking the cluster and
   pulling back any element whose probe path crosses the hole.  No
   tombstones, so a probe sequence never decays no matter how many
   create/evaporate cycles churn through the slot (the Index_table
   lesson: 2^23 cycles must leave the table as fast as minute one). *)
let remove_at sh i0 =
  (match sh.slots.(i0) with
  | Some e ->
      if sh.free_len < free_list_cap then begin
        e.key <- 0;
        e.fat <- None;
        sh.free <- e :: sh.free;
        sh.free_len <- sh.free_len + 1
      end
  | None -> ());
  sh.slots.(i0) <- None;
  sh.used <- sh.used - 1;
  let hole = ref i0 in
  let j = ref ((i0 + 1) land sh.mask) in
  let continue = ref true in
  while !continue do
    match sh.slots.(!j) with
    | None -> continue := false
    | Some f ->
        let base = slot_base sh f.key in
        (* movable iff the hole lies on f's probe path [base .. j] *)
        if (!hole - base) land sh.mask <= (!j - base) land sh.mask then begin
          sh.slots.(!hole) <- sh.slots.(!j);
          sh.slots.(!j) <- None;
          hole := !j
        end;
        j := (!j + 1) land sh.mask
  done

(* Stripe held.  Returns the entry for [key], creating an empty one
   (unowned, no monitor, unpinned) if absent. *)
let find_or_create sh key =
  let i = find_index sh key in
  if i >= 0 then Option.get sh.slots.(i)
  else begin
    if 2 * (sh.used + 1) > sh.mask + 1 then grow sh;
    let e =
      match sh.free with
      | e :: rest ->
          sh.free <- rest;
          sh.free_len <- sh.free_len - 1;
          e
      | [] -> { key = 0; owner = 0; depth = 0; fat = None; refs = 0 }
    in
    e.key <- key;
    e.owner <- 0;
    e.depth <- 0;
    e.fat <- None;
    e.refs <- 0;
    insert_entry sh e;
    sh.used <- sh.used + 1;
    e
  end

(* {1 Construction} *)

let pow2_at_least n =
  let r = ref 1 in
  while !r < n do
    r := !r lsl 1
  done;
  !r

let live_entries ctx =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let n = sh.used in
      Mutex.unlock sh.lock;
      acc + n)
    0 ctx.shards

let monitors_created ctx = Atomic.get ctx.created
let monitors_evaporated ctx = Atomic.get ctx.evaporated

let create_with ?(config = default_config) ?(events = Sink.disabled)
    (_runtime : Runtime.t) =
  if config.shards < 1 then invalid_arg "Cjm.create_with: shards must be >= 1";
  if config.initial_capacity < 1 then
    invalid_arg "Cjm.create_with: initial_capacity must be >= 1";
  let nshards = pow2_at_least config.shards in
  let cap = pow2_at_least (max 8 config.initial_capacity) in
  let ctx =
    {
      shards =
        Array.init nshards (fun _ ->
            {
              lock = Mutex.create ();
              slots = Array.make cap None;
              mask = cap - 1;
              used = 0;
              free = [];
              free_len = 0;
            });
      shard_mask = nshards - 1;
      config;
      stats = Lock_stats.create ();
      events;
      tracing = Sink.enabled events;
      created = Atomic.make 0;
      evaporated = Atomic.make 0;
    }
  in
  Lock_stats.register_gauge ctx.stats "cjm.entries.live" (fun () ->
      live_entries ctx);
  Lock_stats.register_gauge ctx.stats "cjm.monitors.live" (fun () ->
      Atomic.get ctx.created - Atomic.get ctx.evaporated);
  ctx

let create runtime = create_with runtime
let stats ctx = ctx.stats

(* {1 Monitor lifecycle} *)

(* Stripe held, [refs = 0], [i] the entry's slot.  Remove the entry if
   nothing keeps it alive: an idle monitor evaporates (the CJM
   deflation — no handshake, the unpinning mutator just deletes), and
   a monitor-less unowned entry vanishes silently.  [refs = 0] means
   no entrant is queued and no waiter is parked (both hold pins), so
   [is_idle] only guards the instant between a releaser's unlock and
   its evaporation check. *)
let evaporate_if_idle ctx env sh i =
  match sh.slots.(i) with
  | Some ({ fat = Some fat; _ } as e) when Fatlock.is_idle fat ->
      let id = e.key in
      remove_at sh i;
      Atomic.incr ctx.evaporated;
      if ctx.config.record_stats then Lock_stats.record_deflation ctx.stats;
      if ctx.tracing then
        emit_lifecycle ctx ~tid:(my_index env) Ev.Cjm_monitor_evaporate ~arg:id
  | Some { fat = None; owner = 0; _ } -> remove_at sh i
  | Some _ | None -> ()

(* Drop a pin taken for a blocking operation; last one out sweeps. *)
let unpin ctx env sh id (entry : entry) =
  Mutex.lock sh.lock;
  entry.refs <- entry.refs - 1;
  if entry.refs = 0 then begin
    let i = find_index sh id in
    if i >= 0 then evaporate_if_idle ctx env sh i
  end;
  Mutex.unlock sh.lock

(* Stripe held; the caller has already pinned [entry].  Materialise a
   monitor born owned by the inline owner, transferring its depth. *)
let inflate_locked ctx env (entry : entry) ~cause =
  let fat =
    Fatlock.create_locked ~tag:entry.key ~events:ctx.events ~owner:entry.owner
      ~count:entry.depth ()
  in
  entry.fat <- Some fat;
  entry.owner <- 0;
  entry.depth <- 0;
  Atomic.incr ctx.created;
  if ctx.config.record_stats then Lock_stats.record_inflation ctx.stats cause;
  if ctx.tracing then
    emit_lifecycle ctx ~tid:(my_index env) Ev.Cjm_monitor_create ~arg:entry.key;
  fat

(* {1 Operations} *)

(* Blocking entry to a live monitor; the pin was taken under the
   stripe.  The monitor never retires (evaporation requires [refs =
   0], and we hold a pin), so no retirement retry loop is needed. *)
let fat_acquire ctx env obj sh (entry : entry) fat =
  let queued = not (Fatlock.try_acquire env fat) in
  if queued then Fatlock.acquire env fat;
  let depth = Fatlock.count fat in
  if ctx.config.record_stats then
    Lock_stats.record_acquire_fat ctx.stats obj ~queued ~depth;
  if ctx.tracing then
    emit ctx ~tid:(my_index env)
      (if queued then Ev.Acquire_fat_queued else Ev.Acquire_fat)
      ~arg:(Obj_model.id obj);
  (* We own the monitor, so this unpin never evaporates it. *)
  unpin ctx env sh (Obj_model.id obj) entry

let acquire ctx env obj =
  let id = Obj_model.id obj in
  let sh = shard_for ctx id in
  let me = my_index env in
  Mutex.lock sh.lock;
  let entry = find_or_create sh id in
  match entry.fat with
  | None when entry.owner = 0 ->
      (* The hash-lock claim: owning the entry is owning the lock. *)
      entry.owner <- me;
      entry.depth <- 1;
      if ctx.tracing then emit ctx ~tid:me Ev.Acquire_fast ~arg:id;
      Mutex.unlock sh.lock;
      if ctx.config.record_stats then
        Lock_stats.record_acquire_unlocked ctx.stats obj
  | None when entry.owner = me ->
      entry.depth <- entry.depth + 1;
      let depth = entry.depth in
      if ctx.tracing then emit ctx ~tid:me Ev.Acquire_nested ~arg:id;
      Mutex.unlock sh.lock;
      if ctx.config.record_stats then
        Lock_stats.record_acquire_nested ctx.stats ~depth
  | None ->
      (* Contended inline entry: the *contender* inflates (unlike thin
         locks, where only the owner can — there is no header word to
         race on, the stripe serialises us against the owner). *)
      entry.refs <- entry.refs + 1;
      let fat = inflate_locked ctx env entry ~cause:`Contention in
      Mutex.unlock sh.lock;
      fat_acquire ctx env obj sh entry fat
  | Some fat ->
      entry.refs <- entry.refs + 1;
      Mutex.unlock sh.lock;
      fat_acquire ctx env obj sh entry fat

let not_owner op =
  raise
    (Fatlock.Illegal_monitor_state
       (Printf.sprintf "cjm: %s by a thread that does not hold the lock" op))

let release ctx env obj =
  let id = Obj_model.id obj in
  let sh = shard_for ctx id in
  let me = my_index env in
  Mutex.lock sh.lock;
  let i = find_index sh id in
  if i < 0 then begin
    Mutex.unlock sh.lock;
    not_owner "release"
  end;
  let entry = Option.get sh.slots.(i) in
  match entry.fat with
  | None ->
      if entry.owner <> me then begin
        Mutex.unlock sh.lock;
        not_owner "release"
      end;
      if entry.depth > 1 then begin
        entry.depth <- entry.depth - 1;
        if ctx.tracing then emit ctx ~tid:me Ev.Release_nested ~arg:id;
        Mutex.unlock sh.lock;
        if ctx.config.record_stats then Lock_stats.record_release ctx.stats `Nested
      end
      else begin
        entry.owner <- 0;
        entry.depth <- 0;
        (* monitor-less and unowned: the entry evaporates with the
           lock unless a contender has pinned it mid-inflation *)
        if entry.refs = 0 then remove_at sh i;
        if ctx.tracing then emit ctx ~tid:me Ev.Release_fast ~arg:id;
        Mutex.unlock sh.lock;
        if ctx.config.record_stats then Lock_stats.record_release ctx.stats `Fast
      end
  | Some fat ->
      (match Fatlock.release env fat with
      | () -> ()
      | exception e ->
          Mutex.unlock sh.lock;
          raise e);
      if ctx.tracing then emit ctx ~tid:me Ev.Release_fat ~arg:id;
      if entry.refs = 0 then evaporate_if_idle ctx env sh i;
      Mutex.unlock sh.lock;
      if ctx.config.record_stats then Lock_stats.record_release ctx.stats `Fat

let wait ?timeout ctx env obj =
  let id = Obj_model.id obj in
  let sh = shard_for ctx id in
  let me = my_index env in
  Mutex.lock sh.lock;
  let i = find_index sh id in
  if i < 0 then begin
    Mutex.unlock sh.lock;
    not_owner "wait"
  end;
  let entry = Option.get sh.slots.(i) in
  let fat =
    match entry.fat with
    | Some fat ->
        entry.refs <- entry.refs + 1;
        fat
    | None ->
        if entry.owner <> me then begin
          Mutex.unlock sh.lock;
          not_owner "wait"
        end;
        (* wait() on an inline lock: the owner inflates first, exactly
           as thin locks do for a wait on a thin word (§2.3). *)
        entry.refs <- entry.refs + 1;
        inflate_locked ctx env entry ~cause:`Wait
  in
  Mutex.unlock sh.lock;
  if ctx.config.record_stats then Lock_stats.record_wait ctx.stats;
  if ctx.tracing then emit ctx ~tid:me Ev.Wait_op ~arg:id;
  (match Fatlock.wait ?timeout env fat with
  | () -> ()
  | exception e ->
      unpin ctx env sh id entry;
      raise e);
  (* We re-own the monitor here, so this unpin never evaporates it. *)
  unpin ctx env sh id entry

let notify_common ctx env obj ~all =
  let id = Obj_model.id obj in
  let sh = shard_for ctx id in
  let me = my_index env in
  let op = if all then "notifyAll" else "notify" in
  Mutex.lock sh.lock;
  let i = find_index sh id in
  if i < 0 then begin
    Mutex.unlock sh.lock;
    not_owner op
  end;
  let entry = Option.get sh.slots.(i) in
  (match entry.fat with
  | None ->
      (* Inline lock held by me: no thread can possibly be waiting. *)
      if entry.owner <> me then begin
        Mutex.unlock sh.lock;
        not_owner op
      end
  | Some fat -> (
      match if all then Fatlock.notify_all env fat else Fatlock.notify env fat with
      | () -> ()
      | exception e ->
          Mutex.unlock sh.lock;
          raise e));
  if ctx.tracing then
    emit ctx ~tid:me (if all then Ev.Notify_all_op else Ev.Notify_op) ~arg:id;
  Mutex.unlock sh.lock;
  if ctx.config.record_stats then
    if all then Lock_stats.record_notify_all ctx.stats
    else Lock_stats.record_notify ctx.stats

let notify ctx env obj = notify_common ctx env obj ~all:false
let notify_all ctx env obj = notify_common ctx env obj ~all:true

let holds ctx env obj =
  let id = Obj_model.id obj in
  let sh = shard_for ctx id in
  Mutex.lock sh.lock;
  let held =
    let i = find_index sh id in
    if i < 0 then false
    else
      match Option.get sh.slots.(i) with
      | { fat = Some fat; _ } -> Fatlock.holds env fat
      | { owner; _ } -> owner = my_index env
  in
  Mutex.unlock sh.lock;
  held
