(** The thin-lock protocol as step-machine model programs.

    These programs mirror [Tl_core.Thin] operation-for-operation and
    reuse the real [Tl_heap.Header] bit manipulations, so the model
    checks the very word-level protocol the library executes.  The fat
    monitor is modelled as a CAS-guarded owner/count pair (queuing
    becomes bounded spinning) — enough to verify the thin↔fat
    transition safety that §2.3.4 argues informally.

    Memory layout (see {!addr}): the lock word, per-thread
    critical-section flags, a completed-sections counter (doubling as
    a lost-update detector), the model fat monitor, and a give-up
    counter for threads that exhaust their bounded spin budget. *)

module Addr : sig
  val lockword : int
  val fat_owner : int
  val fat_count : int

  val cs_flag : tid:int -> int
  (** Per-thread in-critical-section flag; [tid] in 1..8. *)

  val done_flag : tid:int -> int
  (** Set once a thread completes all its iterations. *)

  val gave_up_flag : tid:int -> int
  (** Set when a thread exhausts its spin budget and abandons. *)

  val fat_retired : int
  (** The model monitor's sticky retired flag (deflation extension). *)

  val deflated_flag : int
  (** Set by a deflater that completed a deflation. *)

  val protocol_error : int
  (** Set if a handshake CAS that must succeed failed — checked by
      {!mutual_exclusion_invariant}. *)

  val mem_size : int
end

val deflater_token : int
(** The pseudo-owner a deflater CASes into [fat_owner] to atomically
    check-and-retire an idle monitor; a retired monitor keeps it
    forever (the freed slot's tombstone), so stale entrants can never
    reacquire it. *)

val worker :
  tid:int ->
  iterations:int ->
  ?nesting:int ->
  ?lenient:bool ->
  ?trace:bool ->
  spin_budget:int ->
  unit ->
  Machine.program
(** A thread that [iterations] times: acquires the lock ([nesting]
    times, default 1), runs the critical section (its flag up, then
    down), releases; finally sets its [done_flag].  When a spin budget
    runs out the thread bumps [gave_up] and stops — exploration stays
    finite.  [lenient] makes release tolerate a word it does not own
    (needed in buggy-variant worlds, where dispossession is the bug
    under test).

    [trace] (default [false]) emits a [Machine.Label] of the form
    ["ev <tid> <kind-name>"] immediately after each protocol
    operation's linearising memory access — the same event vocabulary
    as [Tl_core.Thin]'s instrumentation ([Tl_events.Event]), the
    single model object being id 1.  Collected by
    [Machine.run_random], the labels form a stream in exact
    linearisation order, checkable by [Tl_events.Oracle] in strict
    mode. *)

val deflater : ?trace:bool -> unit -> Machine.program
(** One shot of the real deflation handshake
    ([Tl_core.Thin.deflate_lockword]): claim the
    deflation-in-progress bit, CAS-retire the monitor if idle, rewrite
    the word to thin-unlocked (setting [Addr.deflated_flag]) or back
    off.  Exploring it against {!worker}s machine-checks
    deflate-vs-lock-vs-unlock safety. *)

(** Deliberately broken variants, used to demonstrate that the checker
    has teeth: each must yield a violation. *)

val buggy_no_handshake_deflater : ?trace:bool -> unit -> Machine.program
(** Deflates with a plain idleness load and a plain lock-word store —
    no deflation-in-progress bit, no atomic retire.  A worker entering
    between check and act keeps the monitor while the freshly
    thin-unlocked word admits a second thread. *)

val buggy_blind_release_worker :
  tid:int -> iterations:int -> spin_budget:int -> unit -> Machine.program
(** Releases by storing the unlocked pattern without checking
    ownership. *)

val buggy_owner_skip_unlock_worker :
  ?trace:bool -> tid:int -> iterations:int -> spin_budget:int -> unit -> Machine.program
(** Behaves correctly for [iterations] rounds, then performs one extra
    release that skips the ownership check entirely — blindly storing
    the unlocked pattern (and reporting a fast release).  Every
    schedule yields an event stream the protocol automaton rejects:
    the extra unlock hits either an unlocked object, another thread's
    thin lock, or a live monitor. *)

val buggy_nonowner_inflate_worker :
  tid:int -> iterations:int -> spin_budget:int -> unit -> Machine.program
(** On contention, inflates somebody else's thin lock in place —
    violating the owner-only-writes discipline — and then enters
    through the fat monitor. *)

val mutual_exclusion_invariant : threads:int -> int array -> string option
(** At most one [cs_flag] set; additionally no handshake protocol
    error and no retired monitor with a non-tombstone owner. *)

val completion_check : threads:int -> iterations:int -> int array -> string option
(** On completed paths: every thread either finished or gave up, and —
    when none gave up — the lock ends fully released (thin-unlocked or
    fat with no owner; a retired monitor holding the deflater's
    tombstone token is fine).  Catches lost unlocks. *)

(** {1 Operation counting (§3.3)} *)

val solo_counts : [ `Initial | `Nested | `Deep of int ] -> Machine.op_counts
(** Operation census of a single-threaded lock+unlock through the
    given path (no contention): the model's analogue of the paper's
    "only 17 instructions". *)

val fat_solo_counts : unit -> Machine.op_counts
(** Census of lock+unlock through an already-inflated monitor. *)

val acquire_solo_counts : unit -> Machine.op_counts
(** Just the uncontended acquire: 1 load + 1 CAS + setup ALU. *)

val release_solo_counts : unit -> Machine.op_counts
(** Just the count-0 release: 1 load + 1 plain store, {e zero} atomic
    operations — the discipline's payoff (§2.3.2). *)

val nested_acquire_solo_counts : unit -> Machine.op_counts
(** Re-lock by the owner: the CAS fails, the XOR test passes, the
    count is bumped with a plain store. *)

val nested_release_solo_counts : unit -> Machine.op_counts
