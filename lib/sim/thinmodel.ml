open Machine
module Header = Tl_heap.Header

module Addr = struct
  let lockword = 0
  let fat_owner = 2
  let fat_count = 3
  let cs_flag ~tid = 4 + tid (* tids are 1-based, at most 8 *)
  let done_flag ~tid = 12 + tid
  let gave_up_flag ~tid = 20 + tid
  let fat_retired = 29
  let deflated_flag = 30
  let protocol_error = 31
  let mem_size = 32
end

let shifted tid = tid lsl Header.tid_offset

(* The deflater's ownership token: a "thread index" no worker uses.
   [retire_if_idle] is modelled as CAS-ing it into [fat_owner], which
   atomically checks idleness (owner = 0 ⇔ idle: the model monitor has
   no queues) and excludes entrants.  A deflated monitor keeps the
   token forever — the model's tombstone for a freed slot — so no
   entrant can ever CAS a retired monitor; the next inflation installs
   a fresh owner/count/retired triple, modelling a fresh fat lock. *)
let deflater_token = 15

let give_up ~tid = Store (Addr.gave_up_flag ~tid, 1, fun () -> Done)

(* Protocol-event marker, mirroring the instrumentation in
   [Tl_core.Thin]: ["ev <tid> <kind-name>"], parseable back into
   [Tl_events.Event] records (the single model object is id 1).  Each
   marker sits in continuation position immediately after the memory
   access that linearises the operation, so [Machine.run_random]
   collects the labels in exact linearisation order and a strict-order
   oracle can judge the stream. *)
let ev ~trace ~tid name k : step =
  if trace then Label (Printf.sprintf "ev %d %s" tid name, k) else k ()

let fat_release ~trace ~tid k =
  Load
    ( Addr.fat_count,
      fun c ->
        if c > 1 then
          Store (Addr.fat_count, c - 1, fun () -> ev ~trace ~tid "release-fat" k)
        else Store (Addr.fat_owner, 0, fun () -> ev ~trace ~tid "release-fat" k) )

(* Inflate a thin lock we own: install the model fat monitor
   (owner/count, with the retired tombstone of any previous incarnation
   cleared — a fresh fat lock) and publish the inflated word.  [locks]
   is the total lock count to transfer.  [cause] is the inflation
   event to emit ("inflate-overflow" or "inflate-contention"),
   followed — as in [Thin.inflate_owned] — by the confirming
   acquire-fat. *)
let inflate_owned ~trace ~cause ~tid ~locks k =
  Store
    ( Addr.fat_retired,
      0,
      fun () ->
        Store
          ( Addr.fat_owner,
            tid,
            fun () ->
              Store
                ( Addr.fat_count,
                  locks,
                  fun () ->
                    Load
                      ( Addr.lockword,
                        fun word ->
                          Store
                            ( Addr.lockword,
                              Header.inflated_word ~hdr:(Header.hdr_bits word) ~monitor_index:1,
                              fun () ->
                                ev ~trace ~tid cause (fun () ->
                                    ev ~trace ~tid "acquire-fat" k) ) ) ) ) )

(* --- the thin-lock protocol, mirroring Tl_core.Thin.acquire ---

   The model fat monitor is a CAS-guarded owner/count pair.  The fat
   path is retire-aware, mirroring [Thin.fat_acquire]: the entry load
   of [fat_retired] models the generation check ([Montable.find]
   returning [None]), the post-spin load models [Fatlock.acquire_live]
   returning [`Retired]; both bounce back to a fresh read of the lock
   word, which the deflater rewrites right after retiring. *)

let rec fat_acquire ?(trace = false) ~tid ~budget k =
  Load
    ( Addr.fat_retired,
      fun r ->
        if r = 1 then restart ~trace ~tid ~budget k
        else
          Cas
            ( Addr.fat_owner,
              0,
              tid,
              fun ok ->
                if ok then
                  ev ~trace ~tid "acquire-fat" (fun () -> Store (Addr.fat_count, 1, k))
                else
                  Load
                    ( Addr.fat_owner,
                      fun owner ->
                        if owner = tid then
                          Load
                            ( Addr.fat_count,
                              fun c ->
                                Store
                                  ( Addr.fat_count,
                                    c + 1,
                                    fun () -> ev ~trace ~tid "acquire-fat" k ) )
                        else
                          Load
                            ( Addr.fat_retired,
                              fun r ->
                                if r = 1 then restart ~trace ~tid ~budget k
                                else if budget <= 0 then give_up ~tid
                                else
                                  Alu
                                    ( 1,
                                      fun () ->
                                        fat_acquire ~trace ~tid ~budget:(budget - 1) k )
                            ) ) ) )

and restart ~trace ~tid ~budget k =
  if budget <= 0 then give_up ~tid else acquire ~trace ~tid ~budget:(budget - 1) k

and acquire ?(trace = false) ~tid ~budget k =
  Load
    ( Addr.lockword,
      fun word ->
        let unlocked = Header.hdr_bits word in
        Alu
          ( 2,
            fun () ->
              Cas
                ( Addr.lockword,
                  unlocked,
                  unlocked lor shifted tid,
                  fun ok ->
                    if ok then ev ~trace ~tid "acquire-fast" k
                    else acquire_slow ~trace ~tid ~budget word k ) ) )

and acquire_slow ~trace ~tid ~budget stale k =
  ignore stale;
  Load
    ( Addr.lockword,
      fun word ->
        let x = word lxor shifted tid in
        if x < Header.nested_limit then
          Alu
            ( 2,
              fun () ->
                Store
                  ( Addr.lockword,
                    word + Header.count_increment,
                    fun () -> ev ~trace ~tid "acquire-nested" k ) )
        else if Header.is_inflated word then fat_acquire ~trace ~tid ~budget k
        else if Header.is_unlocked word then
          if budget <= 0 then give_up ~tid else acquire ~trace ~tid ~budget:(budget - 1) k
        else if Header.thin_owner word = tid then
          (* count overflow *)
          inflate_owned ~trace ~cause:"inflate-overflow" ~tid
            ~locks:(Header.thin_count word + 2) k
        else
          ev ~trace ~tid "contended-begin" (fun () ->
              contended ~trace ~tid ~budget (fun () ->
                  ev ~trace ~tid "contended-end" k)) )

and contended ~trace ~tid ~budget k =
  Load
    ( Addr.lockword,
      fun word ->
        if Header.is_inflated word then fat_acquire ~trace ~tid ~budget k
        else
          let unlocked = Header.hdr_bits word in
          if Header.is_unlocked word then
            Cas
              ( Addr.lockword,
                unlocked,
                unlocked lor shifted tid,
                fun ok ->
                  if ok then inflate_owned ~trace ~cause:"inflate-contention" ~tid ~locks:1 k
                  else if budget <= 0 then give_up ~tid
                  else contended ~trace ~tid ~budget:(budget - 1) k )
          else if budget <= 0 then give_up ~tid
          else Alu (1, fun () -> contended ~trace ~tid ~budget:(budget - 1) k) )

let release ?(lenient = false) ?(trace = false) ~tid k =
  Load
    ( Addr.lockword,
      fun word ->
        let held_once = Header.hdr_bits word lor shifted tid in
        if word = held_once then
          Alu
            ( 1,
              fun () ->
                Store
                  ( Addr.lockword,
                    Header.hdr_bits word,
                    fun () -> ev ~trace ~tid "release-fast" k ) )
        else if word lxor shifted tid < 1 lsl Header.tid_offset then
          Alu
            ( 1,
              fun () ->
                Store
                  ( Addr.lockword,
                    word - Header.count_increment,
                    fun () -> ev ~trace ~tid "release-nested" k ) )
        else if Header.is_inflated word then fat_release ~trace ~tid k
        else if lenient then k ()
          (* buggy-variant worlds reach states where the "owner" was
             already dispossessed; exploration must go on *)
        else failwith "model release: not owner" )

(* --- critical section: flag up, flag down ---
   Two plain stores keep exploration tractable; any overlap of two
   critical sections makes both flags 1 simultaneously, which the
   per-step invariant observes no matter how the stores interleave. *)

let critical_section ~tid k =
  Store (Addr.cs_flag ~tid, 1, fun () -> Store (Addr.cs_flag ~tid, 0, k))

let rec lock_n ?trace ~tid ~budget n k =
  if n = 0 then k ()
  else acquire ?trace ~tid ~budget (fun () -> lock_n ?trace ~tid ~budget (n - 1) k)

let rec release_n ?lenient ?trace ~tid n k =
  if n = 0 then k ()
  else release ?lenient ?trace ~tid (fun () -> release_n ?lenient ?trace ~tid (n - 1) k)

let worker ~tid ~iterations ?(nesting = 1) ?lenient ?trace ~spin_budget () : program =
 fun () ->
  let rec iter i =
    if i = 0 then Store (Addr.done_flag ~tid, 1, fun () -> Done)
    else
      lock_n ?trace ~tid ~budget:spin_budget nesting (fun () ->
          critical_section ~tid (fun () ->
              release_n ?lenient ?trace ~tid nesting (fun () -> iter (i - 1))))
  in
  iter iterations

(* --- deflaters ---

   The real handshake ([Thin.deflate_lockword]): claim the
   deflation-in-progress bit on the inflated word, atomically
   check-and-retire the monitor (here: CAS the deflater token into the
   idle owner field), then either rewrite the word to thin-unlocked or
   CAS the bit back off.  The two post-retirement CASes can only fail
   if some other thread wrote an inflated word while we held the bit —
   a protocol violation, flagged at [Addr.protocol_error] for the
   invariant to see. *)

let deflater ?(trace = false) () : program =
 fun () ->
  Load
    ( Addr.lockword,
      fun word ->
        if (not (Header.is_inflated word)) || Header.is_deflating word then Done
        else
          Cas
            ( Addr.lockword,
              word,
              Header.set_deflating word,
              fun won ->
                if not won then Done
                else
                  let finish new_word k =
                    Cas
                      ( Addr.lockword,
                        Header.set_deflating word,
                        new_word,
                        fun ok ->
                          if ok then k () else Store (Addr.protocol_error, 1, fun () -> Done) )
                  in
                  Cas
                    ( Addr.fat_owner,
                      0,
                      deflater_token,
                      fun idle ->
                        if idle then
                          Store
                            ( Addr.fat_retired,
                              1,
                              fun () ->
                                finish (Header.hdr_bits word) (fun () ->
                                    ev ~trace ~tid:0 "deflate-concurrent" (fun () ->
                                        Store (Addr.deflated_flag, 1, fun () -> Done))) )
                        else
                          finish word (fun () ->
                              ev ~trace ~tid:0 "deflate-aborted" (fun () -> Done)) ) ) )

(* The no-handshake deflater: checks idleness with a plain load and
   rewrites the lock word with a plain store — the check-then-act race
   the deflation-in-progress bit exists to close.  A worker can enter
   the monitor between the two; the deflated word then lets a second
   thread in beside it (mutual-exclusion violation), and the first
   worker's release finds a word it no longer owns (completion
   violation). *)
let buggy_no_handshake_deflater ?(trace = false) () : program =
 fun () ->
  Load
    ( Addr.lockword,
      fun word ->
        if not (Header.is_inflated word) then Done
        else
          Load
            ( Addr.fat_owner,
              fun owner ->
                if owner <> 0 then Done
                else
                  Store
                    ( Addr.lockword,
                      Header.hdr_bits word,
                      fun () ->
                        ev ~trace ~tid:0 "deflate-concurrent" (fun () ->
                            Store (Addr.deflated_flag, 1, fun () -> Done)) ) ) )

(* --- broken variants --- *)

let blind_release k =
  Load (Addr.lockword, fun word -> Store (Addr.lockword, Header.hdr_bits word, k))

(* Double release: a correct release followed by a blind store of the
   unlocked pattern — i.e. releasing a lock we no longer hold, which
   can unlock the other thread's fresh acquisition out from under
   it. *)
let buggy_blind_release_worker ~tid ~iterations ~spin_budget () : program =
 fun () ->
  let rec iter i =
    if i = 0 then Done
    else
      acquire ~tid ~budget:spin_budget (fun () ->
          critical_section ~tid (fun () ->
              release ~lenient:true ~tid (fun () -> blind_release (fun () -> iter (i - 1)))))
  in
  iter iterations

(* Owner-skip unlock: after its correct iterations, one extra release
   executed without checking (or holding) ownership — the unlock
   analogue of the non-owner inflate bug below.  The blind store either
   unlocks an object nobody holds, dispossesses whoever does hold it,
   or flattens a live monitor; whichever way the schedule falls, the
   release-fast event it reports cannot be explained by any automaton
   run, so a stream-level oracle flags every schedule. *)
let buggy_owner_skip_unlock_worker ?(trace = false) ~tid ~iterations ~spin_budget () :
    program =
 fun () ->
  let skip_release k =
    Load
      ( Addr.lockword,
        fun word ->
          Store
            ( Addr.lockword,
              Header.hdr_bits word,
              fun () -> ev ~trace ~tid "release-fast" k ) )
  in
  let rec iter i =
    if i = 0 then skip_release (fun () -> Store (Addr.done_flag ~tid, 1, fun () -> Done))
    else
      acquire ~trace ~tid ~budget:spin_budget (fun () ->
          critical_section ~tid (fun () ->
              release ~lenient:true ~trace ~tid (fun () -> iter (i - 1))))
  in
  iter iterations

(* On contention, inflate in place without owning the thin lock — the
   discipline violation §2.3.4 exists to prevent. *)
let rec buggy_acquire ~tid ~budget k =
  Load
    ( Addr.lockword,
      fun word ->
        let unlocked = Header.hdr_bits word in
        Cas
          ( Addr.lockword,
            unlocked,
            unlocked lor shifted tid,
            fun ok ->
              if ok then k ()
              else
                Load
                  ( Addr.lockword,
                    fun word ->
                      let x = word lxor shifted tid in
                      if x < Header.nested_limit then
                        Store (Addr.lockword, word + Header.count_increment, k)
                      else if Header.is_inflated word then fat_acquire ~tid ~budget k
                      else if Header.is_unlocked word then
                        if budget <= 0 then give_up ~tid
                        else buggy_acquire ~tid ~budget:(budget - 1) k
                      else
                        (* BUG: not ours, but write the inflated word anyway
                           and grab the fat monitor. *)
                        Store
                          ( Addr.lockword,
                            Header.inflated_word ~hdr:(Header.hdr_bits word)
                              ~monitor_index:1,
                            fun () -> fat_acquire ~tid ~budget k ) ) ) )

let buggy_nonowner_inflate_worker ~tid ~iterations ~spin_budget () : program =
 fun () ->
  let rec iter i =
    if i = 0 then Done
    else
      buggy_acquire ~tid ~budget:spin_budget (fun () ->
          critical_section ~tid (fun () -> release ~lenient:true ~tid (fun () -> iter (i - 1))))
  in
  iter iterations

(* --- invariants --- *)

let mutual_exclusion_invariant ~threads mem =
  let inside = ref 0 in
  for tid = 1 to threads do
    inside := !inside + mem.(Addr.cs_flag ~tid)
  done;
  if !inside > 1 then Some (Printf.sprintf "%d threads in the critical section" !inside)
  else if mem.(Addr.protocol_error) = 1 then
    Some "deflation handshake CAS failed: inflated word changed under the bit"
  else if mem.(Addr.fat_retired) = 1 && mem.(Addr.fat_owner) <> deflater_token then
    Some "retired monitor has an owner"
  else None

let completion_check ~threads ~iterations mem =
  ignore iterations;
  let gave_up = ref 0 in
  let finished = ref 0 in
  for tid = 1 to threads do
    gave_up := !gave_up + mem.(Addr.gave_up_flag ~tid);
    finished := !finished + mem.(Addr.done_flag ~tid)
  done;
  let gave_up = !gave_up in
  if !finished + gave_up < threads then
    Some (Printf.sprintf "threads unaccounted for: finished=%d gave_up=%d" !finished gave_up)
  else if gave_up = 0 && Header.is_thin_locked mem.(Addr.lockword) then
    Some "lock word left locked after all threads completed"
  else if gave_up = 0 && mem.(Addr.fat_owner) <> 0 && mem.(Addr.fat_retired) = 0 then
    (* A retired monitor legitimately keeps the deflater token — the
       model's freed-slot tombstone. *)
    Some "fat monitor left owned after all threads completed"
  else None

(* --- op counting --- *)

let solo_counts path =
  let program =
    match path with
    | `Initial -> worker ~tid:1 ~iterations:1 ~spin_budget:0 ()
    | `Nested -> worker ~tid:1 ~iterations:1 ~nesting:2 ~spin_budget:0 ()
    | `Deep n -> worker ~tid:1 ~iterations:1 ~nesting:n ~spin_budget:0 ()
  in
  let _, counts = run_solo ~mem_size:Addr.mem_size program in
  counts

let acquire_solo_counts () =
  let mem = Array.make Addr.mem_size 0 in
  run_seeded mem (fun () -> acquire ~tid:1 ~budget:0 (fun () -> Done))

let release_solo_counts () =
  let mem = Array.make Addr.mem_size 0 in
  mem.(Addr.lockword) <- Header.thin_word ~hdr:0 ~shifted_tid:(shifted 1) ~count:0;
  run_seeded mem (fun () -> release ~tid:1 (fun () -> Done))

let nested_acquire_solo_counts () =
  let mem = Array.make Addr.mem_size 0 in
  mem.(Addr.lockword) <- Header.thin_word ~hdr:0 ~shifted_tid:(shifted 1) ~count:0;
  run_seeded mem (fun () -> acquire ~tid:1 ~budget:0 (fun () -> Done))

let nested_release_solo_counts () =
  let mem = Array.make Addr.mem_size 0 in
  mem.(Addr.lockword) <- Header.thin_word ~hdr:0 ~shifted_tid:(shifted 1) ~count:1;
  run_seeded mem (fun () -> release ~tid:1 (fun () -> Done))

let fat_solo_counts () =
  (* Seed memory as an already-inflated, unowned monitor and measure
     one lock/unlock pair through the fat path. *)
  let mem = Array.make Addr.mem_size 0 in
  mem.(Addr.lockword) <- Header.inflated_word ~hdr:0 ~monitor_index:1;
  let program () = acquire ~tid:1 ~budget:0 (fun () -> release ~tid:1 (fun () -> Done)) in
  run_seeded mem program
