type step =
  | Done
  | Load of int * (int -> step)
  | Store of int * int * (unit -> step)
  | Cas of int * int * int * (bool -> step)
  | Exchange of int * int * (int -> step)
  | Alu of int * (unit -> step)
  | Label of string * (unit -> step)

type program = unit -> step

type op_counts = { loads : int; stores : int; cas : int; exchanges : int; alu : int }

let zero_counts = { loads = 0; stores = 0; cas = 0; exchanges = 0; alu = 0 }
let total_ops c = c.loads + c.stores + c.cas + c.exchanges + c.alu

let pp_op_counts ppf c =
  Format.fprintf ppf "%d ops (loads=%d stores=%d cas=%d xchg=%d alu=%d)" (total_ops c)
    c.loads c.stores c.cas c.exchanges c.alu

(* Apply one step to memory, returning the next step.  Shared by the
   solo runner and the explorer. *)
let apply mem counts = function
  | Done -> (Done, !counts)
  | Load (a, k) ->
      counts := { !counts with loads = !counts.loads + 1 };
      (k mem.(a), !counts)
  | Store (a, v, k) ->
      counts := { !counts with stores = !counts.stores + 1 };
      mem.(a) <- v;
      (k (), !counts)
  | Cas (a, expected, replacement, k) ->
      counts := { !counts with cas = !counts.cas + 1 };
      if mem.(a) = expected then begin
        mem.(a) <- replacement;
        (k true, !counts)
      end
      else (k false, !counts)
  | Exchange (a, v, k) ->
      counts := { !counts with exchanges = !counts.exchanges + 1 };
      let old = mem.(a) in
      mem.(a) <- v;
      (k old, !counts)
  | Alu (n, k) ->
      counts := { !counts with alu = !counts.alu + n };
      (k (), !counts)
  | Label (_, k) -> (k (), !counts)

let run_seeded mem program =
  let counts = ref zero_counts in
  let rec loop steps s =
    if steps > 1_000_000 then failwith "Machine.run_seeded: step budget exceeded";
    match s with
    | Done -> ()
    | s ->
        let next, _ = apply mem counts s in
        loop (steps + 1) next
  in
  loop 0 (program ());
  !counts

let run_solo ~mem_size program =
  let mem = Array.make mem_size 0 in
  let counts = run_seeded mem program in
  (mem, counts)

type violation = { message : string; schedule : int list }

type outcome = {
  explored_paths : int;
  completed_paths : int;
  truncated_paths : int;
  violation : violation option;
}

exception Found of violation

(* Advance thread [i] past any non-scheduling steps (Alu, Label) so
   that the branching factor counts only memory operations. *)
let rec skim mem counts s =
  match s with
  | Alu (_, _) | Label (_, _) ->
      let next, _ = apply mem counts s in
      skim mem counts next
  | s -> s

let apply_seed_mem seed_mem mem = List.iter (fun (a, v) -> mem.(a) <- v) seed_mem

let explore ?(max_depth = 10_000) ?(seed_mem = []) ?(final = fun _ -> None) ~mem_size ~invariant
    programs =
  let explored = ref 0 in
  let completed = ref 0 in
  let truncated = ref 0 in
  let scratch_counts = ref zero_counts in
  let rec go mem states depth schedule =
    let enabled =
      Array.to_list states
      |> List.mapi (fun i s -> (i, s))
      |> List.filter (fun (_, s) -> s <> Done)
    in
    if enabled = [] then begin
      incr explored;
      incr completed;
      match final mem with
      | Some message -> raise (Found { message; schedule = List.rev schedule })
      | None -> ()
    end
    else if depth >= max_depth then begin
      incr explored;
      incr truncated
    end
    else
      List.iter
        (fun (i, s) ->
          let mem' = Array.copy mem in
          let next, _ = apply mem' scratch_counts s in
          let next = skim mem' scratch_counts next in
          (match invariant mem' with
          | Some message -> raise (Found { message; schedule = List.rev (i :: schedule) })
          | None -> ());
          let states' = Array.copy states in
          states'.(i) <- next;
          go mem' states' (depth + 1) (i :: schedule))
        enabled
  in
  let mem = Array.make mem_size 0 in
  apply_seed_mem seed_mem mem;
  let counts = ref zero_counts in
  let states = Array.map (fun p -> skim mem counts (p ())) programs in
  match go mem states 0 [] with
  | () ->
      {
        explored_paths = !explored;
        completed_paths = !completed;
        truncated_paths = !truncated;
        violation = None;
      }
  | exception Found v ->
      {
        explored_paths = !explored;
        completed_paths = !completed;
        truncated_paths = !truncated;
        violation = Some v;
      }

let sample ?(max_depth = 100_000) ?(seed_mem = []) ?(final = fun _ -> None) ~schedules ~seed
    ~mem_size ~invariant programs =
  let prng = Tl_util.Prng.create seed in
  let explored = ref 0 in
  let completed = ref 0 in
  let truncated = ref 0 in
  let counts = ref zero_counts in
  let run_one () =
    let mem = Array.make mem_size 0 in
    apply_seed_mem seed_mem mem;
    let states = Array.map (fun p -> skim mem counts (p ())) programs in
    let schedule = ref [] in
    let rec step depth =
      let enabled =
        Array.to_list states
        |> List.mapi (fun i s -> (i, s))
        |> List.filter (fun (_, s) -> s <> Done)
      in
      match enabled with
      | [] -> begin
          incr completed;
          match final mem with
          | Some message -> raise (Found { message; schedule = List.rev !schedule })
          | None -> ()
        end
      | _ :: _ when depth >= max_depth -> incr truncated
      | enabled ->
          let i, s = List.nth enabled (Tl_util.Prng.int prng (List.length enabled)) in
          schedule := i :: !schedule;
          let next, _ = apply mem counts s in
          states.(i) <- skim mem counts next;
          (match invariant mem with
          | Some message -> raise (Found { message; schedule = List.rev !schedule })
          | None -> ());
          step (depth + 1)
    in
    incr explored;
    step 0
  in
  let rec loop n =
    if n = 0 then
      {
        explored_paths = !explored;
        completed_paths = !completed;
        truncated_paths = !truncated;
        violation = None;
      }
    else
      match run_one () with
      | () -> loop (n - 1)
      | exception Found v ->
          {
            explored_paths = !explored;
            completed_paths = !completed;
            truncated_paths = !truncated;
            violation = Some v;
          }
  in
  loop schedules

type traced = { t_mem : int array; t_labels : string list; t_steps : int }

let run_random ?(max_depth = 200_000) ?(seed_mem = []) ~seed ~mem_size programs =
  let prng = Tl_util.Prng.create seed in
  let mem = Array.make mem_size 0 in
  apply_seed_mem seed_mem mem;
  let counts = ref zero_counts in
  let labels = ref [] in
  (* Like [skim], but collect labels: a [Label] in continuation
     position right after a memory step is processed within the same
     scheduling turn, so a label placed immediately after its
     operation's linearising access is atomic with it — the collected
     label list is in exact linearisation order. *)
  let rec skim_collect s =
    match s with
    | Label (l, k) ->
        labels := l :: !labels;
        skim_collect (k ())
    | Alu (_, _) ->
        let next, _ = apply mem counts s in
        skim_collect next
    | s -> s
  in
  let states = Array.map (fun p -> skim_collect (p ())) programs in
  let steps = ref 0 in
  let rec loop depth =
    let enabled =
      Array.to_list states
      |> List.mapi (fun i s -> (i, s))
      |> List.filter (fun (_, s) -> s <> Done)
    in
    match enabled with
    | [] -> ()
    | _ when depth >= max_depth ->
        failwith "Machine.run_random: depth budget exceeded"
    | enabled ->
        let i, s = List.nth enabled (Tl_util.Prng.int prng (List.length enabled)) in
        let next, _ = apply mem counts s in
        states.(i) <- skim_collect next;
        incr steps;
        loop (depth + 1)
  in
  loop 0;
  { t_mem = mem; t_labels = List.rev !labels; t_steps = !steps }
