(** A deterministic shared-memory machine for model checking and
    instruction counting.

    Algorithms are written as step machines in continuation style over
    a small word-addressed shared memory; every shared-memory access
    (load, store, compare-and-swap, atomic exchange) is a scheduling
    point.  The explorer enumerates {e all} interleavings of a small
    configuration up to a depth bound and checks a user-supplied state
    invariant after every step — this is how we machine-check the
    paper's informal argument that the owner-only-writes discipline is
    safe (§2.3.2), and how we count the operations on each path
    (§3.3's instruction-count discussion).

    Programs must be pure apart from their memory effects: local state
    is threaded through continuation arguments, so a [step] value can
    be resumed along different futures during exploration. *)

type step =
  | Done
  | Load of int * (int -> step)  (** address, continuation on the value *)
  | Store of int * int * (unit -> step)  (** address, value *)
  | Cas of int * int * int * (bool -> step)
      (** address, expected, replacement; continuation on success *)
  | Exchange of int * int * (int -> step)  (** address, new value; continuation on old *)
  | Alu of int * (unit -> step)
      (** [n] register/branch instructions with no memory effect;
          counted but not a scheduling point *)
  | Label of string * (unit -> step)
      (** execution marker (e.g. entering a critical section); not a
          scheduling point, visible to invariants via the trace *)

type program = unit -> step
(** A thread body; invoked once per run/exploration branch. *)

(** {1 Sequential execution and op counting} *)

type op_counts = { loads : int; stores : int; cas : int; exchanges : int; alu : int }

val zero_counts : op_counts
val total_ops : op_counts -> int
val pp_op_counts : Format.formatter -> op_counts -> unit

val run_solo : mem_size:int -> program -> int array * op_counts
(** Run one program to completion on fresh zeroed memory; returns the
    final memory and the operation census.
    @raise Failure if the program exceeds 1e6 steps (runaway spin). *)

val run_seeded : int array -> program -> op_counts
(** Like {!run_solo} but on caller-provided (pre-seeded, mutated in
    place) memory. *)

(** {1 Exhaustive interleaving exploration} *)

type violation = {
  message : string;
  schedule : int list;  (** thread choices from the start, oldest first *)
}

type outcome = {
  explored_paths : int;
  completed_paths : int;  (** paths on which every thread reached [Done] *)
  truncated_paths : int;  (** paths cut by the depth bound *)
  violation : violation option;  (** first invariant failure found, if any *)
}

val explore :
  ?max_depth:int ->
  ?seed_mem:(int * int) list ->
  ?final:(int array -> string option) ->
  mem_size:int ->
  invariant:(int array -> string option) ->
  program array ->
  outcome
(** Depth-first enumeration of all interleavings of the programs over
    a shared zeroed memory of [mem_size] words.  [seed_mem] is a list
    of [(address, value)] pairs applied to the initial memory — e.g.
    seeding an already-inflated lock word so a deflater has something
    to deflate without paying the inflation prefix.  [invariant] inspects
    memory after every scheduling point and returns [Some msg] to
    report a violation; [final] additionally checks the memory of
    every path on which all threads completed.  Exploration stops at
    the first violation.  [max_depth] (default 10_000) bounds each
    path's total step count — spin loops make some schedules infinite,
    so model programs should bound their retries; paths hitting the
    depth bound are counted as truncated, not failed.

    Exploration is exponential in total memory operations: keep model
    programs to a handful of shared accesses each. *)

val sample :
  ?max_depth:int ->
  ?seed_mem:(int * int) list ->
  ?final:(int array -> string option) ->
  schedules:int ->
  seed:int ->
  mem_size:int ->
  invariant:(int array -> string option) ->
  program array ->
  outcome
(** Randomized complement to {!explore} for configurations too large
    to enumerate: runs [schedules] uniformly-random schedules
    (deterministic in [seed], each on freshly [seed_mem]-initialized
    memory), checking the same invariants.  Spin
    loops are fine here — random schedulers are fair with probability
    1 — but [max_depth] still guards against livelock. *)

(** {1 Single random schedule with label collection} *)

type traced = {
  t_mem : int array;  (** final memory *)
  t_labels : string list;  (** every {!Label} crossed, in execution order *)
  t_steps : int;  (** scheduling steps taken *)
}

val run_random :
  ?max_depth:int ->
  ?seed_mem:(int * int) list ->
  seed:int ->
  mem_size:int ->
  program array ->
  traced
(** Run the programs under one uniformly-random schedule
    (deterministic in [seed]) to completion, collecting every label
    crossed.  A [Label] placed in continuation position immediately
    after a memory access executes within the same scheduling turn as
    that access, so model programs that label their linearisation
    points yield label sequences in exact linearisation order — which
    is what makes the collected stream checkable by a strict-order
    oracle.  Unlike {!sample} there is no invariant: the point is to
    extract the execution trace and judge it externally.
    @raise Failure if the schedule exceeds [max_depth] (default
    200_000) steps. *)
