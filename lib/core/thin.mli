(** Thin locks — the paper's algorithm (§2.3).

    The lock word layout and bit tricks live in [Tl_heap.Header]; this
    module implements the protocol on top of them:

    - {b acquire, unlocked object}: one compare-and-swap of
      [hdr-bits] → [hdr-bits | my-pre-shifted-index] (§2.3.1);
    - {b acquire, nested}: the one-comparison XOR test, then
      [word + 256] written with a plain store (§2.3.3);
    - {b release}: equality test against the count-0 pattern, then a
      plain store — never an atomic operation, by the discipline that
      only the owner writes a thin-held lock word (§2.3.2);
    - {b contention}: spin with backoff; on seizing the thin lock,
      inflate to a fat monitor, permanently (§2.3.4);
    - {b wait / count overflow}: the owner inflates directly,
      transferring its recursion count.

    The {!config} knobs correspond to the paper's Fig. 6 variants and
    §3.2's count-width conjecture; defaults reproduce the paper's
    final "ThinLock" configuration. *)

type config = {
  count_width : int;
      (** Bits of nest count, 1–8 (default 8).  The paper conjectures
          2–3 suffice (§3.2); narrower counts inflate sooner. *)
  backoff_policy : Tl_runtime.Backoff.policy;
  unlock_with_cas : bool;
      (** The [UnlkC&S] variant (Fig. 6): release with a
          compare-and-swap instead of a plain store. *)
  extra_fence : bool;
      (** The [MP Sync] variant (Fig. 6): an extra atomic round-trip
          per lock and unlock, standing in for PowerPC
          [isync]/[sync]. *)
  record_stats : bool;
      (** Maintain {!Lock_stats} counters (default true).  Turn off
          for pure time measurements. *)
  fat_backend : Tl_monitor.Fatlock.backend;
      (** Contended-path engine for monitors born from inflation
          (default [Parker]; see [Fatlock.backend]).  [Hapax] admits
          contenders in FIFO arrival order through constant-time
          ticketing; [Delegate] additionally lets {!sync} hand the
          critical section to the current owner (flat combining). *)
}

val default_config : config

include Scheme_intf.S

val create_with :
  ?config:config -> ?events:Tl_events.Sink.t -> Tl_runtime.Runtime.t -> ctx
(** [events] (default [Sink.disabled]) attaches a lock-event trace
    sink.  The enabled/disabled decision is cached in the ctx, so a
    disabled sink costs the fast path one field load and an untaken
    branch; an enabled one records every protocol step
    ([Tl_events.Event.kind]) as it happens. *)

val config_of : ctx -> config
val montable : ctx -> Tl_monitor.Montable.t
(** Exposed for tests and for the deflation extension. *)

val events : ctx -> Tl_events.Sink.t
(** The sink given to {!create_with} ([Sink.disabled] if none). *)

val lock_word : Tl_heap.Obj_model.t -> int
(** Current raw lock word (for examples and tests). *)

val sync : ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> (unit -> unit) -> unit
(** [sync ctx env obj f]: run [f] with [obj]'s lock held — the
    synchronized-block shape.  Equivalent to acquire/[f]/release
    everywhere except on a monitor with the [Delegate] fat backend,
    where a contender that finds the monitor busy publishes [f] for
    the owner to execute at release (flat combining) instead of
    waiting for ownership: [f] still runs under mutual exclusion,
    exactly once, and any exception it raises surfaces here, but the
    calling thread may never own the monitor (so [f] must not use
    owner-dependent operations — wait/notify — on [obj]).  Delegated
    episodes are counted under the ["fatlock.delegated_syncs"] stats
    extra and traced as a [Contended_begin]/[Contended_end] pair with
    no acquisition between them. *)

(** {1 Deflation (extension)}

    The paper makes inflation permanent ("prevents thrashing between
    the thin and fat states", §2.3); Onodera & Kawachiya's Tasuki
    locks showed how to undo it {e without} stopping the world, by
    handshaking through a flc bit in the header.  This extension
    implements that handshake (the bit is
    [Tl_heap.Header.deflating_bit]):

    + the deflater CASes the deflation-in-progress bit onto the
      inflated word, arbitrating rival deflaters;
    + under the monitor latch it atomically checks idleness and sets a
      sticky {e retired} flag ([Fatlock.retire_if_idle]);
    + if retired, it CASes the word to thin-unlocked and only then
      frees the slot (generation bumped); if the monitor was busy it
      CASes the bit back off — an {e aborted handshake}.

    Entering threads never block on the bit: one that reaches a
    retired monitor is turned away ([Fatlock.acquire_live] returning
    [`Retired]) and re-reads the lock word, which the deflater rewrote
    right after retiring.  Monitors are never resurrected —
    re-inflation allocates a fresh one — so a stale reference cannot
    acquire a recycled monitor.

    Deflations are counted in {!Lock_stats}
    ([Lock_stats.snapshot.deflations], plus the
    ["deflations.non_quiescent"] and ["deflation.aborted_handshakes"]
    extras and the [monitors.*] gauges).  The lifecycle reaper
    ([Tl_lifecycle.Reaper]) drives {!deflate_lockword} from the
    monitor census under a pluggable policy. *)

type deflate_outcome =
  [ `Deflated  (** idle monitor retired; word back to thin-unlocked *)
  | `Busy  (** monitor in use; handshake aborted, bit cleared *)
  | `Lost_race  (** another deflater holds the bit, or the word moved *)
  | `Not_inflated  (** nothing to do *) ]

val deflate_lockword :
  ctx -> cause:[ `Quiescent | `Concurrent ] -> int Atomic.t -> deflate_outcome
(** Run the deflation handshake on one atomic lock word (the form the
    reaper uses — it walks [Montable] entries, which carry the word as
    a back-reference, without needing the heap object).  [cause] only
    affects accounting: [`Concurrent] deflations are additionally
    counted under ["deflations.non_quiescent"]. *)

val deflate_obj : ctx -> cause:[ `Quiescent | `Concurrent ] -> Tl_heap.Obj_model.t -> deflate_outcome
(** {!deflate_lockword} on an object's lock word. *)

val deflate_idle : ctx -> Tl_heap.Obj_model.t -> bool
(** [deflate_idle ctx obj] is
    [deflate_obj ctx ~cause:`Quiescent obj = `Deflated]: the historical
    entry point for quiescence-point deflation, now running the same
    handshake (safe under traffic, merely more likely to report
    [false] there). *)

val deflations : ctx -> int
(** How many locks the handshake has deflated, as recorded in the
    statistics (0 when [record_stats] is off). *)
