(** Thin locks — the paper's algorithm (§2.3).

    The lock word layout and bit tricks live in [Tl_heap.Header]; this
    module implements the protocol on top of them:

    - {b acquire, unlocked object}: one compare-and-swap of
      [hdr-bits] → [hdr-bits | my-pre-shifted-index] (§2.3.1);
    - {b acquire, nested}: the one-comparison XOR test, then
      [word + 256] written with a plain store (§2.3.3);
    - {b release}: equality test against the count-0 pattern, then a
      plain store — never an atomic operation, by the discipline that
      only the owner writes a thin-held lock word (§2.3.2);
    - {b contention}: spin with backoff; on seizing the thin lock,
      inflate to a fat monitor, permanently (§2.3.4);
    - {b wait / count overflow}: the owner inflates directly,
      transferring its recursion count.

    The {!config} knobs correspond to the paper's Fig. 6 variants and
    §3.2's count-width conjecture; defaults reproduce the paper's
    final "ThinLock" configuration. *)

type config = {
  count_width : int;
      (** Bits of nest count, 1–8 (default 8).  The paper conjectures
          2–3 suffice (§3.2); narrower counts inflate sooner. *)
  backoff_policy : Tl_runtime.Backoff.policy;
  unlock_with_cas : bool;
      (** The [UnlkC&S] variant (Fig. 6): release with a
          compare-and-swap instead of a plain store. *)
  extra_fence : bool;
      (** The [MP Sync] variant (Fig. 6): an extra atomic round-trip
          per lock and unlock, standing in for PowerPC
          [isync]/[sync]. *)
  record_stats : bool;
      (** Maintain {!Lock_stats} counters (default true).  Turn off
          for pure time measurements. *)
}

val default_config : config

include Scheme_intf.S

val create_with : ?config:config -> Tl_runtime.Runtime.t -> ctx

val config_of : ctx -> config
val montable : ctx -> Tl_monitor.Montable.t
(** Exposed for tests and for the deflation extension. *)

val lock_word : Tl_heap.Obj_model.t -> int
(** Current raw lock word (for examples and tests). *)

(** {1 Deflation (extension)}

    The paper makes inflation permanent ("prevents thrashing between
    the thin and fat states", §2.3) and later work (Onodera &
    Kawachiya's Tasuki locks) showed how to undo it.  This extension
    takes the approach production JVMs use: deflate at {e quiescence
    points} (e.g. when a garbage collector has stopped the world),
    where no thread can be concurrently entering the monitor. *)

val deflate_idle : ctx -> Tl_heap.Obj_model.t -> bool
(** [deflate_idle ctx obj] returns the object to the thin-unlocked
    state if its fat monitor is completely idle (unowned, empty entry
    queue, empty wait set — checked as one consistent snapshot under
    the monitor latch); returns [true] on deflation, [false] if the
    lock was not inflated or not idle.

    The monitor-table slot {e is} recycled: the lock word is rewritten
    first, then the slot is freed with its generation tag bumped, so a
    thread still holding the old inflated word detects the reuse (its
    handle goes stale) and re-reads instead of acquiring a recycled
    monitor.  Deflations are counted in {!Lock_stats} (see
    [Lock_stats.snapshot.deflations] and the [monitors.*] gauges).

    {b Safety:} the caller must guarantee that no thread is
    concurrently performing a monitor operation on [obj] (quiescence,
    e.g. a stop-the-world point); the generation tag is
    defense-in-depth, not a license to deflate under traffic. *)

val deflations : ctx -> int
(** How many locks {!deflate_idle} has deflated, as recorded in the
    statistics (0 when [record_stats] is off). *)
