open Tl_runtime
open Tl_heap
module Fatlock = Tl_monitor.Fatlock
module Montable = Tl_monitor.Montable

type config = {
  count_width : int;
  backoff_policy : Backoff.policy;
  unlock_with_cas : bool;
  extra_fence : bool;
  record_stats : bool;
}

let default_config =
  {
    count_width = Header.count_width;
    backoff_policy = Backoff.Yield_sleep;
    unlock_with_cas = false;
    extra_fence = false;
    record_stats = true;
  }

type ctx = {
  runtime : Runtime.t;
  montable : Montable.t;
  stats : Lock_stats.t;
  nested_limit : int;
  config : config;
  fence_pad : int Atomic.t; (* target of the MP Sync variant's extra atomic op *)
}

let name = "thin"

let create_with ?(config = default_config) runtime =
  if config.count_width < 1 || config.count_width > Header.count_width then
    invalid_arg "Thin.create_with: count_width";
  let montable = Montable.create () in
  let stats = Lock_stats.create () in
  (* Monitor-lifecycle gauges ride along in every snapshot, so reports
     see the census without reaching into the table. *)
  Lock_stats.register_gauge stats "monitors.live" (fun () -> Montable.live montable);
  Lock_stats.register_gauge stats "monitors.allocated" (fun () -> Montable.allocated montable);
  Lock_stats.register_gauge stats "monitors.slot_reuses" (fun () -> Montable.reuses montable);
  {
    runtime;
    montable;
    stats;
    nested_limit = Header.nested_limit_for ~count_width:config.count_width;
    config;
    fence_pad = Atomic.make 0;
  }

let create runtime = create_with runtime

let stats ctx = ctx.stats
let config_of ctx = ctx.config
let montable ctx = ctx.montable
let lock_word obj = Atomic.get (Obj_model.lockword obj)

(* Stand-in for the PowerPC isync/sync pair of the MP Sync variant: a
   real atomic read-modify-write, the closest full-barrier operation
   OCaml exposes. *)
let fence ctx = if ctx.config.extra_fence then ignore (Atomic.fetch_and_add ctx.fence_pad 1)

let my_index (env : Runtime.env) = env.descriptor.Tid.index

(* The owner transfers its thin lock into a fresh fat lock.  Only the
   owner may write the lock word, so plain stores suffice; the monitor
   table publishes the fat lock before the inflated word becomes
   visible (both are seq-cst atomics). *)
let inflate_owned ctx env obj ~locks ~cause =
  let fat = Fatlock.create_locked ~owner:(my_index env) ~count:locks in
  let monitor_index = Montable.allocate ~shard_hint:(my_index env) ctx.montable fat in
  let lw = Obj_model.lockword obj in
  let hdr = Header.hdr_bits (Atomic.get lw) in
  Atomic.set lw (Header.inflated_word ~hdr ~monitor_index);
  if ctx.config.record_stats then Lock_stats.record_inflation ctx.stats cause;
  fat

(* Contended thin lock: spin with backoff until either some other
   contender inflates the lock, or we seize the thin lock ourselves and
   force the thin→fat transition (§2.3.4). *)
let rec contended ctx env obj backoff =
  let lw = Obj_model.lockword obj in
  let word = Atomic.get lw in
  if Header.is_inflated word then begin
    if ctx.config.record_stats then
      Lock_stats.record_contended_spin ctx.stats ~spins:(Backoff.steps backoff);
    fat_acquire ctx env obj (Header.monitor_index word)
  end
  else
    let hdr = Header.hdr_bits word in
    if
      Header.is_unlocked word
      && Atomic.compare_and_set lw hdr (hdr lor env.Runtime.shifted_index)
    then begin
      (* We own the thin lock now; complete the transition. *)
      if ctx.config.record_stats then
        Lock_stats.record_contended_spin ctx.stats ~spins:(Backoff.steps backoff);
      ignore (inflate_owned ctx env obj ~locks:1 ~cause:`Contention);
      if ctx.config.record_stats then
        Lock_stats.record_acquire_fat ctx.stats obj ~queued:false ~depth:1
    end
    else begin
      Backoff.once backoff;
      contended ctx env obj backoff
    end

and acquire ctx env obj =
  fence ctx;
  let lw = Obj_model.lockword obj in
  let word = Atomic.get lw in
  (* "old value": the lock word with the high 24 bits masked out *)
  let unlocked_pattern = Header.hdr_bits word in
  if Atomic.compare_and_set lw unlocked_pattern (unlocked_pattern lor env.Runtime.shifted_index)
  then begin
    (* Scenario 1: locking an unlocked object. *)
    if ctx.config.record_stats then Lock_stats.record_acquire_unlocked ctx.stats obj
  end
  else
    let word = Atomic.get lw in
    let x = word lxor env.Runtime.shifted_index in
    if x < ctx.nested_limit then begin
      (* Scenarios 2-3: nested locking by the owner.  The single
         comparison above checked shape = thin, owner = me and
         count < limit all at once; bump the count with a plain
         store. *)
      Atomic.set lw (word + Header.count_increment);
      if ctx.config.record_stats then
        Lock_stats.record_acquire_nested ctx.stats ~depth:(Header.thin_count word + 2)
    end
    else if Header.is_inflated word then fat_acquire ctx env obj (Header.monitor_index word)
    else if Header.is_unlocked word then
      (* The owner released between our CAS and the re-read; retry. *)
      acquire ctx env obj
    else if Header.thin_owner word = my_index env then begin
      (* Ours, but the count is saturated: "excessive" nesting
         overflows into a fat lock (§2.3). *)
      let locks = Header.thin_count word + 2 in
      ignore (inflate_owned ctx env obj ~locks ~cause:`Overflow);
      if ctx.config.record_stats then Lock_stats.record_acquire_nested ctx.stats ~depth:locks
    end
    else
      (* Scenario 4/5: held by another thread. *)
      contended ctx env obj (Backoff.create ~policy:ctx.config.backoff_policy ())

and fat_acquire ctx env obj monitor_ref =
  match Montable.find ctx.montable monitor_ref with
  | None ->
      (* The word we read was stale: the monitor behind it was deflated
         and its slot reclaimed (detected by the generation tag).  The
         deflater rewrote the lock word before freeing the slot, so a
         fresh read makes progress. *)
      if ctx.config.record_stats then Lock_stats.add_extra ctx.stats "stale_monitor_reads" 1;
      acquire ctx env obj
  | Some fat ->
      let queued = not (Fatlock.try_acquire env fat) in
      if queued then Fatlock.acquire env fat;
      if ctx.config.record_stats then
        Lock_stats.record_acquire_fat ctx.stats obj ~queued ~depth:(Fatlock.count fat)

let owner_store ctx lw ~old_word ~new_word =
  if ctx.config.unlock_with_cas then begin
    (* UnlkC&S variant: pay for an atomic op the discipline makes
       unnecessary. *)
    if not (Atomic.compare_and_set lw old_word new_word) then
      (* Only the owner writes a thin-held word, so this cannot fail. *)
      assert false
  end
  else Atomic.set lw new_word

let not_owner op env word =
  raise
    (Fatlock.Illegal_monitor_state
       (Printf.sprintf "%s: thread %d does not hold the lock (%s)" op (my_index env)
          (Header.describe word)))

let release ctx env obj =
  fence ctx;
  let lw = Obj_model.lockword obj in
  let word = Atomic.get lw in
  let held_once_pattern = Header.hdr_bits word lor env.Runtime.shifted_index in
  if word = held_once_pattern then begin
    (* Most common: owned once by me — store the unlocked pattern. *)
    owner_store ctx lw ~old_word:word ~new_word:(Header.hdr_bits word);
    if ctx.config.record_stats then Lock_stats.record_release ctx.stats `Fast
  end
  else if word lxor env.Runtime.shifted_index < 1 lsl Header.tid_offset then begin
    (* Thin, mine, count >= 1: decrement with a plain store. *)
    owner_store ctx lw ~old_word:word ~new_word:(word - Header.count_increment);
    if ctx.config.record_stats then Lock_stats.record_release ctx.stats `Nested
  end
  else if Header.is_inflated word then begin
    Fatlock.release env (Montable.get ctx.montable (Header.monitor_index word));
    if ctx.config.record_stats then Lock_stats.record_release ctx.stats `Fat
  end
  else not_owner "release" env word

let wait ?timeout ctx env obj =
  let lw = Obj_model.lockword obj in
  let word = Atomic.get lw in
  let fat =
    if Header.is_inflated word then Montable.get ctx.montable (Header.monitor_index word)
    else if word lxor env.Runtime.shifted_index < 1 lsl Header.tid_offset then
      (* wait() on a thin lock: the owner inflates first (§2.3). *)
      inflate_owned ctx env obj ~locks:(Header.thin_count word + 1) ~cause:`Wait
    else not_owner "wait" env word
  in
  if ctx.config.record_stats then Lock_stats.record_wait ctx.stats;
  Fatlock.wait ?timeout env fat

let notify ctx env obj =
  let word = lock_word obj in
  if Header.is_inflated word then
    Fatlock.notify env (Montable.get ctx.montable (Header.monitor_index word))
  else if word lxor env.Runtime.shifted_index < 1 lsl Header.tid_offset then
    (* Thin lock held by me: no thread can possibly be waiting. *)
    ()
  else not_owner "notify" env word;
  if ctx.config.record_stats then Lock_stats.record_notify ctx.stats

let notify_all ctx env obj =
  let word = lock_word obj in
  if Header.is_inflated word then
    Fatlock.notify_all env (Montable.get ctx.montable (Header.monitor_index word))
  else if word lxor env.Runtime.shifted_index < 1 lsl Header.tid_offset then ()
  else not_owner "notifyAll" env word;
  if ctx.config.record_stats then Lock_stats.record_notify_all ctx.stats

let holds ctx env obj =
  let word = lock_word obj in
  if Header.is_inflated word then
    match Montable.find ctx.montable (Header.monitor_index word) with
    | Some fat -> Fatlock.holds env fat
    | None -> false (* stale word: whatever monitor it named is gone *)
  else Header.thin_owner word = my_index env

(* Quiescence-point deflation (extension; see the interface for the
   safety contract).  The write back to the thin-unlocked pattern is a
   plain store: under quiescence nobody races us.  The lock word is
   rewritten BEFORE the slot is freed, so any thread that cached the
   old inflated word either re-reads the new word or trips the
   generation check in [fat_acquire]. *)
let deflate_idle ctx obj =
  let lw = Obj_model.lockword obj in
  let word = Atomic.get lw in
  if not (Header.is_inflated word) then false
  else
    let handle = Header.monitor_index word in
    match Montable.find ctx.montable handle with
    | None -> false
    | Some fat ->
        if Fatlock.is_idle fat then begin
          Atomic.set lw (Header.hdr_bits word);
          Montable.free ctx.montable handle;
          if ctx.config.record_stats then Lock_stats.record_deflation ctx.stats;
          true
        end
        else false

let deflations ctx = Lock_stats.deflation_count ctx.stats
