open Tl_runtime
open Tl_heap
module Fatlock = Tl_monitor.Fatlock
module Montable = Tl_monitor.Montable
module Ev = Tl_events.Event

type config = {
  count_width : int;
  backoff_policy : Backoff.policy;
  unlock_with_cas : bool;
  extra_fence : bool;
  record_stats : bool;
  fat_backend : Fatlock.backend;
}

let default_config =
  {
    count_width = Header.count_width;
    backoff_policy = Backoff.Yield_sleep;
    unlock_with_cas = false;
    extra_fence = false;
    record_stats = true;
    fat_backend = Fatlock.Parker;
  }

type ctx = {
  runtime : Runtime.t;
  montable : Montable.t;
  stats : Lock_stats.t;
  nested_limit : int;
  config : config;
  fence_pad : int Atomic.t; (* target of the MP Sync variant's extra atomic op *)
  events : Tl_events.Sink.t;
  tracing : bool;
      (* [Sink.enabled events], cached in the ctx so the fast path pays
         one field load and an untaken branch when tracing is off —
         never a cross-module call *)
}

let name = "thin"

let create_with ?(config = default_config) ?(events = Tl_events.Sink.disabled) runtime =
  if config.count_width < 1 || config.count_width > Header.count_width then
    invalid_arg "Thin.create_with: count_width";
  let montable = Montable.create () in
  let stats = Lock_stats.create () in
  (* Monitor-lifecycle gauges ride along in every snapshot, so reports
     see the census without reaching into the table. *)
  Lock_stats.register_gauge stats "monitors.live" (fun () -> Montable.live montable);
  Lock_stats.register_gauge stats "monitors.allocated" (fun () -> Montable.allocated montable);
  Lock_stats.register_gauge stats "monitors.slot_reuses" (fun () -> Montable.reuses montable);
  Lock_stats.register_gauge stats "events.tid_clamped" (fun () ->
      Tl_events.Sink.tid_clamped events);
  {
    runtime;
    montable;
    stats;
    nested_limit = Header.nested_limit_for ~count_width:config.count_width;
    config;
    fence_pad = Atomic.make 0;
    events;
    tracing = Tl_events.Sink.enabled events;
  }

let create runtime = create_with runtime

let stats ctx = ctx.stats
let config_of ctx = ctx.config
let montable ctx = ctx.montable
let events ctx = ctx.events

(* Every call site is guarded by [if ctx.tracing] so a disabled sink
   costs nothing beyond the branch. *)
let[@inline] emit ctx ~tid kind ~arg = Tl_events.Sink.emit ctx.events ~tid ~kind ~arg

(* Deflater-side events carry no env; they go to the system stream
   (tid 0) via the ticketed path so they order exactly against the
   releases that made the deflation legal. *)
let emit_system ctx kind ~arg = Tl_events.Sink.emit_system ctx.events ~kind ~arg
let lock_word obj = Atomic.get (Obj_model.lockword obj)

(* Stand-in for the PowerPC isync/sync pair of the MP Sync variant: a
   real atomic read-modify-write, the closest full-barrier operation
   OCaml exposes. *)
let fence ctx = if ctx.config.extra_fence then ignore (Atomic.fetch_and_add ctx.fence_pad 1)

let my_index (env : Runtime.env) = env.descriptor.Tid.index

(* The owner transfers its thin lock into a fresh fat lock.  Only the
   owner may write the lock word, so plain stores suffice; the monitor
   table publishes the fat lock before the inflated word becomes
   visible (both are seq-cst atomics). *)
let inflate_owned ctx env obj ~locks ~cause =
  let fat =
    (* The monitor carries the object id as its tag so deflation events
       can name the object without holding it. *)
    Fatlock.create_locked ~backend:ctx.config.fat_backend ~tag:(Obj_model.id obj)
      ~events:ctx.events ~owner:(my_index env) ~count:locks ()
  in
  let lw = Obj_model.lockword obj in
  let monitor_index = Montable.allocate ~shard_hint:(my_index env) ~lockword:lw ctx.montable fat in
  let hdr = Header.hdr_bits (Atomic.get lw) in
  Atomic.set lw (Header.inflated_word ~hdr ~monitor_index);
  if ctx.config.record_stats then Lock_stats.record_inflation ctx.stats cause;
  if ctx.tracing then begin
    let kind =
      match cause with
      | `Contention -> Ev.Inflate_contention
      | `Wait -> Ev.Inflate_wait
      | `Overflow -> Ev.Inflate_overflow
    in
    emit ctx ~tid:(my_index env) kind ~arg:(Obj_model.id obj)
  end;
  fat

(* Contended thin lock: spin with backoff until either some other
   contender inflates the lock, or we seize the thin lock ourselves and
   force the thin→fat transition (§2.3.4). *)
let rec contended ctx env obj backoff =
  let lw = Obj_model.lockword obj in
  let word = Atomic.get lw in
  if Header.is_inflated word then begin
    if ctx.config.record_stats then
      Lock_stats.record_contended_spin ctx.stats ~spins:(Backoff.steps backoff);
    fat_acquire ctx env obj (Header.monitor_index word)
  end
  else
    let hdr = Header.hdr_bits word in
    if
      Header.is_unlocked word
      && Atomic.compare_and_set lw hdr (hdr lor env.Runtime.shifted_index)
    then begin
      (* We own the thin lock now; complete the transition. *)
      if ctx.config.record_stats then
        Lock_stats.record_contended_spin ctx.stats ~spins:(Backoff.steps backoff);
      ignore (inflate_owned ctx env obj ~locks:1 ~cause:`Contention);
      if ctx.config.record_stats then
        Lock_stats.record_acquire_fat ctx.stats obj ~queued:false ~depth:1;
      if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Acquire_fat ~arg:(Obj_model.id obj)
    end
    else begin
      Backoff.once backoff;
      contended ctx env obj backoff
    end

and acquire ctx env obj =
  fence ctx;
  let lw = Obj_model.lockword obj in
  let word = Atomic.get lw in
  (* "old value": the lock word with the high 24 bits masked out *)
  let unlocked_pattern = Header.hdr_bits word in
  if Atomic.compare_and_set lw unlocked_pattern (unlocked_pattern lor env.Runtime.shifted_index)
  then begin
    (* Scenario 1: locking an unlocked object. *)
    if ctx.config.record_stats then Lock_stats.record_acquire_unlocked ctx.stats obj;
    if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Acquire_fast ~arg:(Obj_model.id obj)
  end
  else
    let word = Atomic.get lw in
    let x = word lxor env.Runtime.shifted_index in
    if x < ctx.nested_limit then begin
      (* Scenarios 2-3: nested locking by the owner.  The single
         comparison above checked shape = thin, owner = me and
         count < limit all at once; bump the count with a plain
         store. *)
      Atomic.set lw (word + Header.count_increment);
      if ctx.config.record_stats then
        Lock_stats.record_acquire_nested ctx.stats ~depth:(Header.thin_count word + 2);
      if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Acquire_nested ~arg:(Obj_model.id obj)
    end
    else if Header.is_inflated word then fat_acquire ctx env obj (Header.monitor_index word)
    else if Header.is_unlocked word then
      (* The owner released between our CAS and the re-read; retry. *)
      acquire ctx env obj
    else if Header.thin_owner word = my_index env then begin
      (* Ours, but the count is saturated: "excessive" nesting
         overflows into a fat lock (§2.3). *)
      let locks = Header.thin_count word + 2 in
      ignore (inflate_owned ctx env obj ~locks ~cause:`Overflow);
      if ctx.config.record_stats then Lock_stats.record_acquire_nested ctx.stats ~depth:locks;
      (* Traced as a fat acquisition: the thread leaves holding the fat
         monitor, and the [Inflate_overflow] event names the cause. *)
      if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Acquire_fat ~arg:(Obj_model.id obj)
    end
    else begin
      (* Scenario 4/5: held by another thread. *)
      if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Contended_begin ~arg:(Obj_model.id obj);
      contended ctx env obj
        (Backoff.create ~policy:ctx.config.backoff_policy
           ~yield:(fun () -> Parker.yield env.Runtime.parker)
           ());
      if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Contended_end ~arg:(Obj_model.id obj)
    end

and fat_acquire ctx env obj monitor_ref =
  match Montable.find ctx.montable monitor_ref with
  | None ->
      (* The word we read was stale: the monitor behind it was deflated
         and its slot reclaimed (detected by the generation tag).  The
         deflater rewrote the lock word before freeing the slot, so a
         fresh read makes progress. *)
      if ctx.config.record_stats then Lock_stats.add_extra ctx.stats "stale_monitor_reads" 1;
      acquire ctx env obj
  | Some fat -> (
      (* Entry-side of the deflation handshake: a monitor retired by a
         concurrent deflater turns us away, and a fresh read of the lock
         word — which the deflater rewrites right after retiring — makes
         progress.  Retirement is sticky and re-inflation allocates a
         fresh monitor, so our reference can never resurrect. *)
      let retired_retry () =
        if ctx.config.record_stats then
          Lock_stats.add_extra ctx.stats "deflation.retired_monitor_retries" 1;
        (* The deflater is between retiring and rewriting the word; give
           it the processor rather than spinning through the latch.
           Through the parker, so a fiber yields its carrier domain's
           run queue instead of the bare OS thread. *)
        Parker.yield env.Runtime.parker;
        acquire ctx env obj
      in
      match Fatlock.try_acquire_live env fat with
      | `Acquired ->
          if ctx.config.record_stats then
            Lock_stats.record_acquire_fat ctx.stats obj ~queued:false ~depth:(Fatlock.count fat);
          if ctx.tracing then
            emit ctx ~tid:(my_index env) Ev.Acquire_fat ~arg:(Obj_model.id obj)
      | `Retired -> retired_retry ()
      | `Busy -> (
          match Fatlock.acquire_live env fat with
          | `Acquired entry -> record_fat_entry ctx env obj fat entry
          | `Retired -> retired_retry ()))

(* Post-entry bookkeeping shared by the blocking fat paths: stats
   (including the spin-phase park-avoidance counter) and the
   queued/unqueued acquisition event. *)
and record_fat_entry ctx env obj fat entry =
  let queued = Fatlock.entry_queued entry in
  if ctx.config.record_stats then begin
    Lock_stats.record_acquire_fat ctx.stats obj ~queued ~depth:(Fatlock.count fat);
    if entry = Fatlock.Entry_spun then
      Lock_stats.add_extra ctx.stats "fatlock.spin_avoided_parks" 1
  end;
  if ctx.tracing then
    emit ctx ~tid:(my_index env)
      (if queued then Ev.Acquire_fat_queued else Ev.Acquire_fat)
      ~arg:(Obj_model.id obj)

let owner_store ctx lw ~old_word ~new_word =
  if ctx.config.unlock_with_cas then begin
    (* UnlkC&S variant: pay for an atomic op the discipline makes
       unnecessary. *)
    if not (Atomic.compare_and_set lw old_word new_word) then
      (* Only the owner writes a thin-held word, so this cannot fail. *)
      assert false
  end
  else Atomic.set lw new_word

let not_owner op env word =
  raise
    (Fatlock.Illegal_monitor_state
       (Printf.sprintf "%s: thread %d does not hold the lock (%s)" op (my_index env)
          (Header.describe word)))

let release ctx env obj =
  fence ctx;
  let lw = Obj_model.lockword obj in
  let word = Atomic.get lw in
  let held_once_pattern = Header.hdr_bits word lor env.Runtime.shifted_index in
  if word = held_once_pattern then begin
    (* Most common: owned once by me — store the unlocked pattern. *)
    owner_store ctx lw ~old_word:word ~new_word:(Header.hdr_bits word);
    if ctx.config.record_stats then Lock_stats.record_release ctx.stats `Fast;
    if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Release_fast ~arg:(Obj_model.id obj)
  end
  else if word lxor env.Runtime.shifted_index < 1 lsl Header.tid_offset then begin
    (* Thin, mine, count >= 1: decrement with a plain store. *)
    owner_store ctx lw ~old_word:word ~new_word:(word - Header.count_increment);
    if ctx.config.record_stats then Lock_stats.record_release ctx.stats `Nested;
    if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Release_nested ~arg:(Obj_model.id obj)
  end
  else if Header.is_inflated word then begin
    Fatlock.release env (Montable.get ctx.montable (Header.monitor_index word));
    if ctx.config.record_stats then Lock_stats.record_release ctx.stats `Fat;
    if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Release_fat ~arg:(Obj_model.id obj)
  end
  else not_owner "release" env word

(* synchronized-block entry point: run [f] under the object's lock.
   On the [Delegate] fat backend a contender that finds the monitor
   busy publishes [f] for the owner to combine instead of waiting for
   ownership; every other shape degenerates to acquire/run/release. *)
let rec sync ctx env obj f =
  let classic () =
    acquire ctx env obj;
    Fun.protect ~finally:(fun () -> release ctx env obj) f
  in
  let word = lock_word obj in
  if not (Header.is_inflated word) then classic ()
  else
    match Montable.find ctx.montable (Header.monitor_index word) with
    | None -> classic () (* stale word; acquire re-reads *)
    | Some fat when Fatlock.backend_of fat = Fatlock.Delegate -> (
        fence ctx;
        match Fatlock.delegate_or_acquire env fat f with
        | `Delegated ->
            (* [f] ran exactly once on a combiner; we never owned the
               monitor, so there is nothing to release.  Counted apart
               from acquisitions: a delegated episode is the contended
               path doing its job without a handoff. *)
            if ctx.config.record_stats then
              Lock_stats.add_extra ctx.stats "fatlock.delegated_syncs" 1
        | `Acquired entry ->
            record_fat_entry ctx env obj fat entry;
            Fun.protect ~finally:(fun () -> release ctx env obj) f
        | `Retired ->
            if ctx.config.record_stats then
              Lock_stats.add_extra ctx.stats "deflation.retired_monitor_retries" 1;
            Parker.yield env.Runtime.parker;
            sync ctx env obj f)
    | Some _ -> classic ()

let wait ?timeout ctx env obj =
  let lw = Obj_model.lockword obj in
  let word = Atomic.get lw in
  let fat =
    if Header.is_inflated word then Montable.get ctx.montable (Header.monitor_index word)
    else if word lxor env.Runtime.shifted_index < 1 lsl Header.tid_offset then
      (* wait() on a thin lock: the owner inflates first (§2.3). *)
      inflate_owned ctx env obj ~locks:(Header.thin_count word + 1) ~cause:`Wait
    else not_owner "wait" env word
  in
  if ctx.config.record_stats then Lock_stats.record_wait ctx.stats;
  if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Wait_op ~arg:(Obj_model.id obj);
  Fatlock.wait ?timeout env fat

let notify ctx env obj =
  let word = lock_word obj in
  if Header.is_inflated word then
    Fatlock.notify env (Montable.get ctx.montable (Header.monitor_index word))
  else if word lxor env.Runtime.shifted_index < 1 lsl Header.tid_offset then
    (* Thin lock held by me: no thread can possibly be waiting. *)
    ()
  else not_owner "notify" env word;
  if ctx.config.record_stats then Lock_stats.record_notify ctx.stats;
  if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Notify_op ~arg:(Obj_model.id obj)

let notify_all ctx env obj =
  let word = lock_word obj in
  if Header.is_inflated word then
    Fatlock.notify_all env (Montable.get ctx.montable (Header.monitor_index word))
  else if word lxor env.Runtime.shifted_index < 1 lsl Header.tid_offset then ()
  else not_owner "notifyAll" env word;
  if ctx.config.record_stats then Lock_stats.record_notify_all ctx.stats;
  if ctx.tracing then emit ctx ~tid:(my_index env) Ev.Notify_all_op ~arg:(Obj_model.id obj)

let holds ctx env obj =
  let word = lock_word obj in
  if Header.is_inflated word then
    match Montable.find ctx.montable (Header.monitor_index word) with
    | Some fat -> Fatlock.holds env fat
    | None -> false (* stale word: whatever monitor it named is gone *)
  else Header.thin_owner word = my_index env

(* Deflation handshake (extension; see the interface for the safety
   contract).  The protocol, against the entry side in [fat_acquire] /
   [Fatlock.acquire_live]:

     1. CAS the deflation-in-progress bit onto the inflated word.  This
        arbitrates rival deflaters — only the winner may rewrite the
        word or free the slot — without perturbing entering threads,
        which ignore the bit.
     2. Under the monitor latch, atomically check idleness and set the
        sticky [retired] flag ([Fatlock.retire_if_idle]).  An entrant
        that wins the latch first makes the monitor non-idle and the
        handshake aborts; a retirement that wins first bounces every
        later entrant back to re-read the lock word.
     3. Retired: CAS the word to the thin-unlocked pattern, then free
        the slot.  Word-before-slot ordering means a thread still
        holding the old word either re-reads the new one or trips the
        generation check in [fat_acquire].
     4. Not idle: CAS the bit back off (an aborted handshake) so future
        deflaters may try again.

   Both step-3/4 CASes must succeed — holding the bit excludes every
   other writer of an inflated word — so failure is a protocol bug and
   asserts. *)

type deflate_outcome = [ `Deflated | `Busy | `Lost_race | `Not_inflated ]

let deflate_lockword ctx ~cause lw =
  let word = Atomic.get lw in
  if not (Header.is_inflated word) then `Not_inflated
  else if Header.is_deflating word then `Lost_race
  else if not (Atomic.compare_and_set lw word (Header.set_deflating word)) then `Lost_race
  else begin
    let finish new_word =
      if not (Atomic.compare_and_set lw (Header.set_deflating word) new_word) then assert false
    in
    (* Derive the handle from the word we tagged, never from a caller's
       cached copy: the bit pins this inflation in place. *)
    let handle = Header.monitor_index word in
    match Montable.find ctx.montable handle with
    | None ->
        (* Unreachable while the protocol holds — the slot can only be
           freed by a handshake winner, and we are it — but degrade
           gracefully rather than assert on behalf of other code. *)
        finish word;
        `Lost_race
    | Some fat ->
        if Fatlock.retire_if_idle fat then begin
          finish (Header.hdr_bits word);
          Montable.free ctx.montable handle;
          if ctx.config.record_stats then begin
            Lock_stats.record_deflation ctx.stats;
            match cause with
            | `Concurrent -> Lock_stats.add_extra ctx.stats "deflations.non_quiescent" 1
            | `Quiescent -> ()
          end;
          (* Deflation runs with no env in hand (the reaper walks the
             monitor table); events go to the system stream, tid 0, with
             the monitor's tag recovering the object id. *)
          if ctx.tracing then
            emit_system ctx
              (match cause with
              | `Quiescent -> Ev.Deflate_quiescent
              | `Concurrent -> Ev.Deflate_concurrent)
              ~arg:(Fatlock.tag fat);
          `Deflated
        end
        else begin
          finish word;
          if ctx.config.record_stats then
            Lock_stats.add_extra ctx.stats "deflation.aborted_handshakes" 1;
          if ctx.tracing then emit_system ctx Ev.Deflate_aborted ~arg:(Fatlock.tag fat);
          `Busy
        end
  end

let deflate_obj ctx ~cause obj = deflate_lockword ctx ~cause (Obj_model.lockword obj)

let deflate_idle ctx obj =
  match deflate_obj ctx ~cause:`Quiescent obj with
  | `Deflated -> true
  | `Busy | `Lost_race | `Not_inflated -> false

let deflations ctx = Lock_stats.deflation_count ctx.stats
