(** Lock-operation statistics.

    Counters classify every acquire into the paper's scenario ranking
    (§2: unlocked ≫ shallow nested ≫ deep nested ≫ contended without
    queue ≫ contended with queue) and record the nesting depth of every
    acquisition, which is what Figure 3 plots.  All counters are
    atomic, so multi-threaded workloads may record concurrently; the
    cost is a handful of uncontended atomic adds per operation, paid
    identically by every scheme so comparisons stay fair. *)

type t

val create : unit -> t
val reset : t -> unit

(** {1 Recording — called by locking schemes} *)

val record_acquire_unlocked : t -> Tl_heap.Obj_model.t -> unit
(** Scenario 1: CAS on an unlocked object succeeded (depth 1). *)

val record_acquire_nested : t -> depth:int -> unit
(** Scenarios 2–3: owner re-locked; [depth] is the lock count after
    this acquire (≥ 2). *)

val record_acquire_fat : t -> Tl_heap.Obj_model.t -> queued:bool -> depth:int -> unit
(** Acquire through a fat monitor; [queued] says the thread had to
    block (scenario 5) rather than enter immediately (scenario 4
    shape). *)

val record_contended_spin : t -> spins:int -> unit
(** A thin-lock contender spun [spins] backoff steps before forcing
    inflation (scenario 4). *)

val record_release : t -> [ `Fast | `Nested | `Fat ] -> unit

val record_inflation : t -> [ `Contention | `Wait | `Overflow ] -> unit
val record_wait : t -> unit
val record_notify : t -> unit
val record_notify_all : t -> unit

val record_deflation : t -> unit
(** A fat lock was deflated back to a thin word and its monitor-table
    slot reclaimed (the quiescence-point deflation extension). *)

val deflation_count : t -> int

val add_extra : t -> string -> int -> unit
(** Scheme-specific counters (e.g. the baselines' monitor-cache probes
    and evictions); keys are created on first use.  Lock-free. *)

val register_gauge : t -> string -> (unit -> int) -> unit
(** Register a sampled value (e.g. live monitors) evaluated at
    {!snapshot} time and reported alongside the [extra] counters.
    Re-registering a key replaces the gauge; {!reset} leaves gauges
    alone. *)

(** {1 Snapshots — read by the harness} *)

type snapshot = {
  acquires_unlocked : int;
  acquires_nested : int;
  acquires_fat_fast : int;
  acquires_fat_queued : int;
  contended_spins : int;  (** total backoff steps over all contended episodes *)
  contended_episodes : int;
  releases_fast : int;
  releases_nested : int;
  releases_fat : int;
  inflations_contention : int;
  inflations_wait : int;
  inflations_overflow : int;
  wait_ops : int;
  notify_ops : int;
  notify_all_ops : int;
  deflations : int;  (** quiescence-point deflations (extension) *)
  objects_synchronized : int;
  depth_hist : (int * int) list;  (** (depth, acquires at that depth) *)
  extra : (string * int) list;  (** scheme-specific counters, then gauges *)
}

val snapshot : t -> snapshot

val total_acquires : snapshot -> int
val total_inflations : snapshot -> int

val depth_fraction : snapshot -> int -> float
(** [depth_fraction s d] — fraction of acquires at depth exactly [d]
    (Fig. 3's First/Second/Third columns). *)

val depth_fraction_at_least : snapshot -> int -> float
(** Fraction of acquires at depth ≥ [d] (Fig. 3's "Fourth+"). *)

val syncs_per_object : snapshot -> float
(** Table 1's "Syncs/S.Obj" column. *)

val pp : Format.formatter -> snapshot -> unit
(** Multi-line human-readable dump. *)
