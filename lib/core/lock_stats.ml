let depth_buckets = 64 (* depths >= 63 share the last bucket *)

type t = {
  acquires_unlocked : int Atomic.t;
  acquires_nested : int Atomic.t;
  acquires_fat_fast : int Atomic.t;
  acquires_fat_queued : int Atomic.t;
  contended_spins : int Atomic.t;
  contended_episodes : int Atomic.t;
  releases_fast : int Atomic.t;
  releases_nested : int Atomic.t;
  releases_fat : int Atomic.t;
  inflations_contention : int Atomic.t;
  inflations_wait : int Atomic.t;
  inflations_overflow : int Atomic.t;
  wait_ops : int Atomic.t;
  notify_ops : int Atomic.t;
  notify_all_ops : int Atomic.t;
  deflations : int Atomic.t;
  objects_synchronized : int Atomic.t;
  depths : int Atomic.t array; (* index = min depth (depth_buckets-1) *)
  (* Immutable assoc list behind an atomic: lookups are plain reads of
     a consistent snapshot, and key creation is a CAS — no mutex, no
     read/publish race. *)
  extra : (string * int Atomic.t) list Atomic.t;
  (* Gauges are sampled at snapshot time (e.g. live monitors); they are
     registered once at scheme creation, before any concurrency. *)
  gauges : (string * (unit -> int)) list Atomic.t;
}

let create () =
  {
    acquires_unlocked = Atomic.make 0;
    acquires_nested = Atomic.make 0;
    acquires_fat_fast = Atomic.make 0;
    acquires_fat_queued = Atomic.make 0;
    contended_spins = Atomic.make 0;
    contended_episodes = Atomic.make 0;
    releases_fast = Atomic.make 0;
    releases_nested = Atomic.make 0;
    releases_fat = Atomic.make 0;
    inflations_contention = Atomic.make 0;
    inflations_wait = Atomic.make 0;
    inflations_overflow = Atomic.make 0;
    wait_ops = Atomic.make 0;
    notify_ops = Atomic.make 0;
    notify_all_ops = Atomic.make 0;
    deflations = Atomic.make 0;
    objects_synchronized = Atomic.make 0;
    depths = Array.init depth_buckets (fun _ -> Atomic.make 0);
    extra = Atomic.make [];
    gauges = Atomic.make [];
  }

let reset t =
  let z a = Atomic.set a 0 in
  z t.acquires_unlocked;
  z t.acquires_nested;
  z t.acquires_fat_fast;
  z t.acquires_fat_queued;
  z t.contended_spins;
  z t.contended_episodes;
  z t.releases_fast;
  z t.releases_nested;
  z t.releases_fat;
  z t.inflations_contention;
  z t.inflations_wait;
  z t.inflations_overflow;
  z t.wait_ops;
  z t.notify_ops;
  z t.notify_all_ops;
  z t.deflations;
  z t.objects_synchronized;
  Array.iter z t.depths;
  List.iter (fun (_, a) -> z a) (Atomic.get t.extra)

let bump a = ignore (Atomic.fetch_and_add a 1)

let record_depth t depth = bump t.depths.(min depth (depth_buckets - 1))

let record_first_sync t obj =
  if Tl_heap.Obj_model.mark_synced obj then bump t.objects_synchronized

let record_acquire_unlocked t obj =
  bump t.acquires_unlocked;
  record_depth t 1;
  record_first_sync t obj

let record_acquire_nested t ~depth =
  bump t.acquires_nested;
  record_depth t depth

let record_acquire_fat t obj ~queued ~depth =
  bump (if queued then t.acquires_fat_queued else t.acquires_fat_fast);
  record_depth t depth;
  record_first_sync t obj

let record_contended_spin t ~spins =
  bump t.contended_episodes;
  ignore (Atomic.fetch_and_add t.contended_spins spins)

let record_release t = function
  | `Fast -> bump t.releases_fast
  | `Nested -> bump t.releases_nested
  | `Fat -> bump t.releases_fat

let record_inflation t = function
  | `Contention -> bump t.inflations_contention
  | `Wait -> bump t.inflations_wait
  | `Overflow -> bump t.inflations_overflow

let record_wait t = bump t.wait_ops
let record_notify t = bump t.notify_ops
let record_notify_all t = bump t.notify_all_ops
let record_deflation t = bump t.deflations
let deflation_count t = Atomic.get t.deflations

let add_extra t key n =
  let rec counter () =
    let l = Atomic.get t.extra in
    match List.assoc_opt key l with
    | Some a -> a
    | None ->
        let a = Atomic.make 0 in
        if Atomic.compare_and_set t.extra l ((key, a) :: l) then a else counter ()
  in
  ignore (Atomic.fetch_and_add (counter ()) n)

let register_gauge t key f =
  let rec add () =
    let l = Atomic.get t.gauges in
    let l' = (key, f) :: List.remove_assoc key l in
    if not (Atomic.compare_and_set t.gauges l l') then add ()
  in
  add ()

type snapshot = {
  acquires_unlocked : int;
  acquires_nested : int;
  acquires_fat_fast : int;
  acquires_fat_queued : int;
  contended_spins : int;
  contended_episodes : int;
  releases_fast : int;
  releases_nested : int;
  releases_fat : int;
  inflations_contention : int;
  inflations_wait : int;
  inflations_overflow : int;
  wait_ops : int;
  notify_ops : int;
  notify_all_ops : int;
  deflations : int;
  objects_synchronized : int;
  depth_hist : (int * int) list;
  extra : (string * int) list;
}

let snapshot t =
  let depth_hist = ref [] in
  for i = depth_buckets - 1 downto 0 do
    let c = Atomic.get t.depths.(i) in
    if c > 0 then depth_hist := (i, c) :: !depth_hist
  done;
  let extra =
    List.rev_map (fun (k, a) -> (k, Atomic.get a)) (Atomic.get t.extra)
    @ List.rev_map (fun (k, f) -> (k, f ())) (Atomic.get t.gauges)
  in
  {
    acquires_unlocked = Atomic.get t.acquires_unlocked;
    acquires_nested = Atomic.get t.acquires_nested;
    acquires_fat_fast = Atomic.get t.acquires_fat_fast;
    acquires_fat_queued = Atomic.get t.acquires_fat_queued;
    contended_spins = Atomic.get t.contended_spins;
    contended_episodes = Atomic.get t.contended_episodes;
    releases_fast = Atomic.get t.releases_fast;
    releases_nested = Atomic.get t.releases_nested;
    releases_fat = Atomic.get t.releases_fat;
    inflations_contention = Atomic.get t.inflations_contention;
    inflations_wait = Atomic.get t.inflations_wait;
    inflations_overflow = Atomic.get t.inflations_overflow;
    wait_ops = Atomic.get t.wait_ops;
    notify_ops = Atomic.get t.notify_ops;
    notify_all_ops = Atomic.get t.notify_all_ops;
    deflations = Atomic.get t.deflations;
    objects_synchronized = Atomic.get t.objects_synchronized;
    depth_hist = !depth_hist;
    extra;
  }

let total_acquires s =
  s.acquires_unlocked + s.acquires_nested + s.acquires_fat_fast + s.acquires_fat_queued

let total_inflations s = s.inflations_contention + s.inflations_wait + s.inflations_overflow

let depth_count s d =
  match List.assoc_opt d s.depth_hist with Some c -> c | None -> 0

let depth_fraction s d =
  let total = total_acquires s in
  if total = 0 then 0.0 else float_of_int (depth_count s d) /. float_of_int total

let depth_fraction_at_least s d =
  let total = total_acquires s in
  if total = 0 then 0.0
  else
    let n = List.fold_left (fun acc (depth, c) -> if depth >= d then acc + c else acc) 0 s.depth_hist in
    float_of_int n /. float_of_int total

let syncs_per_object s =
  if s.objects_synchronized = 0 then 0.0
  else float_of_int (total_acquires s) /. float_of_int s.objects_synchronized

let pp ppf s =
  let f fmt = Format.fprintf ppf fmt in
  f "acquires: unlocked=%d nested=%d fat_fast=%d fat_queued=%d (total %d)@\n"
    s.acquires_unlocked s.acquires_nested s.acquires_fat_fast s.acquires_fat_queued
    (total_acquires s);
  f "releases: fast=%d nested=%d fat=%d@\n" s.releases_fast s.releases_nested s.releases_fat;
  f "inflations: contention=%d wait=%d overflow=%d; deflations=%d@\n" s.inflations_contention
    s.inflations_wait s.inflations_overflow s.deflations;
  f "contention: episodes=%d spins=%d@\n" s.contended_episodes s.contended_spins;
  f "wait/notify/notifyAll: %d/%d/%d@\n" s.wait_ops s.notify_ops s.notify_all_ops;
  f "objects synchronized: %d (%.1f syncs/object)@\n" s.objects_synchronized
    (syncs_per_object s);
  f "depth histogram:";
  List.iter (fun (d, c) -> f " %d:%d" d c) s.depth_hist;
  List.iter (fun (k, v) -> f "@\n%s=%d" k v) s.extra
