(** Runtime protocol validation and chaos injection.

    {!with_validation} wraps a packed scheme with an independent shadow
    monitor — a per-object (owner, count) map maintained under its own
    lock — and checks every operation's pre/post conditions against it:
    acquires nest correctly, releases only by the owner, wait/notify
    only while holding.  A scheme that violates monitor semantics trips
    a {!Violation} even if its own bookkeeping is self-consistent.
    Used by the stress tests; too heavyweight for benchmarks.

    {!with_chaos} wraps a scheme so that operations randomly yield the
    processor before and after running — shaking out interleavings that
    cooperative scheduling would otherwise never produce. *)

exception Violation of string

val with_validation : Scheme_intf.packed -> Scheme_intf.packed
(** The wrapped scheme shares the original's statistics.

    Deflation is judged by outcome, not attempt: running [deflate_idle]
    on a held lock is legal (the non-quiescent handshake aborts it),
    but a deflation {e reporting success} while the shadow records an
    owner is a violation — it stranded that owner. *)

val with_chaos : ?seed:int -> ?yield_probability:float -> Scheme_intf.packed -> Scheme_intf.packed
(** [yield_probability] defaults to 0.1 per operation edge. *)

(** {2 Stream-level outcomes}

    The shadow monitor validates operations as they run; these entry
    points validate a run {e after the fact}, from the event stream it
    left behind, by folding it through [Tl_events.Oracle]'s reference
    automaton.  The two are complementary: the shadow monitor sees
    operations the instrumentation might not emit, the oracle sees
    emitted history the shadow monitor has already forgotten. *)

type stream_outcome = {
  stream_events : int;
  stream_objects : int;
  stream_violations : (int * string) list;
      (** (seq, rendered violation), seq [-1] for end-of-stream
          findings; empty = the stream obeys the protocol *)
}

val check_stream :
  ?relaxed:bool -> ?count_width:int -> Tl_events.Sink.drained -> stream_outcome
(** [relaxed] (default [false]) admits the emit-window seq skew of
    multi-domain streams; see [Tl_events.Oracle]. *)

val assert_stream_clean :
  ?relaxed:bool -> ?count_width:int -> Tl_events.Sink.drained -> unit
(** @raise Violation with the first oracle finding, if any. *)
