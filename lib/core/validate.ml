exception Violation of string

let fail fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

type shadow = {
  mutex : Mutex.t;
  table : (int, int * int) Hashtbl.t; (* object id -> owner index, count *)
}

let shadow_create () = { mutex = Mutex.create (); table = Hashtbl.create 64 }

let with_shadow shadow f =
  Mutex.lock shadow.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock shadow.mutex) f

let me (env : Tl_runtime.Runtime.env) = env.Tl_runtime.Runtime.descriptor.Tl_runtime.Tid.index

let entry shadow obj =
  Option.value ~default:(0, 0) (Hashtbl.find_opt shadow.table (Tl_heap.Obj_model.id obj))

let set_entry shadow obj owner count =
  let id = Tl_heap.Obj_model.id obj in
  if owner = 0 then Hashtbl.remove shadow.table id
  else Hashtbl.replace shadow.table id (owner, count)

(* After the underlying acquire returns, this thread must be the
   shadow's owner; before a release, it must be. *)
let with_validation (scheme : Scheme_intf.packed) : Scheme_intf.packed =
  let shadow = shadow_create () in
  let acquire env obj =
    scheme.Scheme_intf.acquire env obj;
    with_shadow shadow (fun () ->
        let owner, count = entry shadow obj in
        if owner <> 0 && owner <> me env then
          fail "acquire returned while thread %d still holds object %d" owner
            (Tl_heap.Obj_model.id obj);
        set_entry shadow obj (me env) (count + 1))
  in
  let release env obj =
    with_shadow shadow (fun () ->
        let owner, count = entry shadow obj in
        if owner <> me env then
          fail "release by thread %d but shadow owner is %d (count %d)" (me env) owner count;
        set_entry shadow obj (if count = 1 then 0 else me env) (count - 1));
    scheme.Scheme_intf.release env obj
  in
  let wait ?timeout env obj =
    let saved =
      with_shadow shadow (fun () ->
          let owner, count = entry shadow obj in
          if owner <> me env then fail "wait by non-owner %d" (me env);
          set_entry shadow obj 0 0;
          count)
    in
    scheme.Scheme_intf.wait ?timeout env obj;
    with_shadow shadow (fun () ->
        let owner, _ = entry shadow obj in
        if owner <> 0 && owner <> me env then
          fail "wait returned while thread %d holds object %d" owner
            (Tl_heap.Obj_model.id obj);
        set_entry shadow obj (me env) saved)
  in
  let notify env obj =
    with_shadow shadow (fun () ->
        let owner, _ = entry shadow obj in
        if owner <> me env then fail "notify by non-owner %d" (me env));
    scheme.Scheme_intf.notify env obj
  in
  let notify_all env obj =
    with_shadow shadow (fun () ->
        let owner, _ = entry shadow obj in
        if owner <> me env then fail "notifyAll by non-owner %d" (me env));
    scheme.Scheme_intf.notify_all env obj
  in
  let deflate_idle obj =
    (* Attempting deflation on a held lock is legal — the handshake is
       designed to abort it — so the violation is outcome-based: a
       deflation that REPORTS success on an object the shadow shows as
       owned stranded that owner.  The shadow mutex is held across the
       scheme call so the comparison is against the shadow state the
       deflation raced with: the shadow's release clears ownership
       before the real release and its acquire records ownership after
       the real acquire, so "deflated a shadow-owned object" cannot be
       a bystander artifact.  (Lock order is safe: schemes never take
       the shadow mutex, and the monitor latch is never held while
       calling back into us.) *)
    with_shadow shadow (fun () ->
        let owner, count = entry shadow obj in
        let deflated = scheme.Scheme_intf.deflate_idle obj in
        if deflated && owner <> 0 then
          fail "deflation succeeded while thread %d holds object %d (count %d)" owner
            (Tl_heap.Obj_model.id obj) count;
        deflated)
  in
  {
    scheme with
    Scheme_intf.name = scheme.Scheme_intf.name ^ "+validated";
    acquire;
    release;
    wait;
    notify;
    notify_all;
    deflate_idle;
  }

let with_chaos ?(seed = 0xC4405) ?(yield_probability = 0.1) (scheme : Scheme_intf.packed) :
    Scheme_intf.packed =
  (* Per-call randomness without shared PRNG state: hash a counter. *)
  let counter = Atomic.make seed in
  let threshold = int_of_float (yield_probability *. 1024.0) in
  let maybe_yield () =
    let n = Atomic.fetch_and_add counter 0x9E3779B1 in
    let h = (n lxor (n lsr 16)) * 0x45D9F3B in
    if (h lsr 7) land 1023 < threshold then Thread.yield ()
  in
  let wrap2 f env obj =
    maybe_yield ();
    f env obj;
    maybe_yield ()
  in
  {
    scheme with
    Scheme_intf.name = scheme.Scheme_intf.name ^ "+chaos";
    acquire = wrap2 scheme.Scheme_intf.acquire;
    release = wrap2 scheme.Scheme_intf.release;
    wait =
      (fun ?timeout env obj ->
        maybe_yield ();
        scheme.Scheme_intf.wait ?timeout env obj;
        maybe_yield ());
    notify = wrap2 scheme.Scheme_intf.notify;
    notify_all = wrap2 scheme.Scheme_intf.notify_all;
  }

type stream_outcome = {
  stream_events : int;
  stream_objects : int;
  stream_violations : (int * string) list;
}

let render (v : Tl_events.Oracle.violation) =
  let seq =
    if v.Tl_events.Oracle.seq < 0 then "end of stream"
    else Printf.sprintf "seq %d" v.Tl_events.Oracle.seq
  in
  Printf.sprintf "%s: %s (tid %d, obj %d): %s" seq
    (Tl_events.Oracle.class_name v.Tl_events.Oracle.cls)
    v.Tl_events.Oracle.tid v.Tl_events.Oracle.obj_id v.Tl_events.Oracle.detail

let check_stream ?(relaxed = false) ?count_width drained =
  let mode =
    if relaxed then Tl_events.Oracle.Relaxed else Tl_events.Oracle.Strict
  in
  let report = Tl_events.Oracle.check ~mode ?count_width drained in
  {
    stream_events = report.Tl_events.Oracle.events;
    stream_objects = report.Tl_events.Oracle.objects;
    stream_violations =
      List.map
        (fun (v : Tl_events.Oracle.violation) ->
          (v.Tl_events.Oracle.seq, render v))
        report.Tl_events.Oracle.violations;
  }

let assert_stream_clean ?relaxed ?count_width drained =
  match (check_stream ?relaxed ?count_width drained).stream_violations with
  | [] -> ()
  | (_, msg) :: _ -> raise (Violation msg)
