(** The locking-scheme interface.

    Every implementation — the thin locks of the paper, its Fig. 6
    variants, and the JDK 1.1.1 / IBM 1.1.2 baselines — exposes the
    same five Java monitor operations over heap objects, so workloads,
    tests and benchmarks are scheme-generic.

    Two forms are provided.  The module type {!S} gives direct calls
    (the compiler may inline the fast paths — the paper's "Inline"
    configuration); {!packed} wraps a scheme as a record of closures
    (the paper's "FnCall" configuration), which is what the generic
    harness uses. *)

module type S = sig
  type ctx
  (** Per-run state: monitor table, caches, statistics.  Independent
      contexts share nothing. *)

  val name : string

  val create : Tl_runtime.Runtime.t -> ctx

  val acquire : ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit
  (** Lock the object ([monitorenter]).  Re-entrant. *)

  val release : ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit
  (** Unlock the object ([monitorexit]).
      @raise Tl_monitor.Fatlock.Illegal_monitor_state if the calling
      thread does not hold the lock. *)

  val wait : ?timeout:float -> ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit
  (** Java [Object.wait]: release fully, block until notified (or
      timeout), re-acquire.
      @raise Tl_monitor.Fatlock.Illegal_monitor_state if not owner. *)

  val notify : ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit
  val notify_all : ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit

  val stats : ctx -> Lock_stats.t

  val holds : ctx -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> bool
  (** Does the calling thread currently own the object's lock? *)
end

type packed = {
  name : string;
  acquire : Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit;
  release : Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit;
  wait : ?timeout:float -> Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit;
  notify : Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit;
  notify_all : Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> unit;
  holds : Tl_runtime.Runtime.env -> Tl_heap.Obj_model.t -> bool;
  stats : unit -> Lock_stats.snapshot;
  reset_stats : unit -> unit;
  deflate_idle : Tl_heap.Obj_model.t -> bool;
      (* Quiescence-point deflation hook; schemes without a deflatable
         representation keep the default (always [false]). *)
}

let pack (type a) ?(deflate_idle = fun _ -> false) (module M : S with type ctx = a) (ctx : a)
    : packed =
  {
    name = M.name;
    acquire = M.acquire ctx;
    release = M.release ctx;
    wait = (fun ?timeout env obj -> M.wait ?timeout ctx env obj);
    notify = M.notify ctx;
    notify_all = M.notify_all ctx;
    holds = M.holds ctx;
    stats = (fun () -> Lock_stats.snapshot (M.stats ctx));
    reset_stats = (fun () -> Lock_stats.reset (M.stats ctx));
    deflate_idle;
  }

let synchronized (scheme : packed) env obj f =
  scheme.acquire env obj;
  Fun.protect ~finally:(fun () -> scheme.release env obj) f
